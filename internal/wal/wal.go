// Package wal implements the write-ahead log of an Ode database.
//
// The logging discipline is deliberately simple and provably sound for
// this system's concurrency design:
//
//   - Transactions buffer their writes privately (no-steal): nothing an
//     uncommitted transaction does ever reaches the shared buffer pool,
//     so the log never needs undo information.
//   - At commit, the transaction's logical operations (object puts and
//     deletes, with after-images) are appended as one batch terminated
//     by a commit record, then fsynced (no-force for data pages).
//   - A checkpoint flushes every dirty page (atomically, via the
//     double-write buffer) and then truncates the log: everything in
//     the log is always "since the last checkpoint".
//   - Recovery therefore replays the whole log in order, applying the
//     operations of batches that have a commit record and ignoring a
//     torn tail. Replay is idempotent: operations are upserts/deletes
//     keyed by object id and version.
//
// The log also carries the replication position. Every committed batch
// has a log sequence number (LSN): batch n since database creation has
// LSN n, regardless of checkpoints. Because truncation discards the
// batches themselves, the truncated log starts with a base record
// (OpLSNBase) holding the LSN at truncation time and the database's
// replication id; the live LSN is always base + the number of commit
// records after it. Truncate installs the new base by writing a fresh
// file and renaming it over the log, so the base update and the
// truncation are one atomic filesystem operation — the LSN accounting
// survives a crash at any instant.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/failpoint"
	"ode/internal/obs"
)

// Failpoint sites on the log's I/O paths (no-ops unless armed; see
// docs/TESTING.md).
var (
	// fpAppend fires in AppendRaw after the batch buffer is built.
	// Partial actions persist a prefix of the batch — a torn log tail
	// that scanEnd must truncate on the next open.
	fpAppend = failpoint.New("wal.append")
	// fpFsync fires in SyncTo between the batch write and the fsync.
	// The batch bytes are already in the file, so a commit that fails
	// here may still be durable — the classic fsync-error ambiguity.
	// The log resolves the ambiguity by poisoning itself: after any
	// fsync failure every append and sync returns ErrWALPoisoned until
	// the log is reopened (see SyncTo).
	fpFsync = failpoint.New("wal.fsync")
	// fpTruncate fires at the top of Truncate (checkpoint log reset).
	fpTruncate = failpoint.New("wal.truncate")
	// fpReplay fires once per record during replay, failing recovery
	// midway.
	fpReplay = failpoint.New("wal.replay")
)

// OpType enumerates logical redo operations.
type OpType uint8

// The operation types. OpCommit terminates a transaction's batch; a
// batch without a trailing OpCommit is discarded at replay. OpLSNBase
// is log metadata, not a redo operation: the first record of a
// truncated log, carrying the base LSN (in the TxID field) and the
// replication id (in the Image field).
const (
	OpInvalid       OpType = iota
	OpPut                  // set the current image of an object
	OpPutVersion           // store a frozen version image
	OpDelete               // remove an object and all its versions
	OpDeleteVersion        // remove one frozen version
	OpCommit
	OpLSNBase
	// OpPrepare terminates a prepared (in-doubt) two-phase-commit batch:
	// the preceding records for its TxID are the transaction's redo ops,
	// durable but not yet decided. Image holds the global transaction id.
	// Prepared batches do not advance the LSN and are never replayed as
	// committed state; recovery surfaces them via ReplayPrepared.
	OpPrepare
	// OpDecide is a coordinator's 2PC decision record: Image holds the
	// global transaction id, Version is 1 for commit and 0 for abort. A
	// decide-commit is always followed (in the same sync) by the ordinary
	// committed batch re-encoding of the prepared ops, which is what
	// replay and replication actually apply.
	OpDecide
)

func (t OpType) String() string {
	switch t {
	case OpPut:
		return "put"
	case OpPutVersion:
		return "put-version"
	case OpDelete:
		return "delete"
	case OpDeleteVersion:
		return "delete-version"
	case OpCommit:
		return "commit"
	case OpLSNBase:
		return "lsn-base"
	case OpPrepare:
		return "prepare"
	case OpDecide:
		return "decide"
	}
	return "invalid"
}

// Op is one logical redo operation.
type Op struct {
	Type    OpType
	TxID    uint64
	OID     uint64
	Version uint32 // current version for OpPut; frozen version for OpPutVersion/OpDeleteVersion
	ClassID uint32
	Image   []byte // serialized object state for the put ops
}

// Record framing on disk:
//
//	[0:4)  payload length
//	[4:8)  CRC32C of payload
//	[8:..) payload
//
// Payload: type(1) txid(8) oid(8) version(4) classid(4) image bytes.
const (
	frameHeader  = 8
	payloadFixed = 1 + 8 + 8 + 4 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a malformed (non-torn-tail) log.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrLSNGap reports a replicated batch whose LSN does not directly
// follow the log's current LSN: the replica missed batches (the
// primary truncated past its position) and must resynchronize.
var ErrLSNGap = errors.New("wal: LSN gap")

// ErrWALPoisoned reports a log whose durability state is unknown: an
// fsync failed, so batches already written may or may not be on disk,
// and the kernel may have silently dropped the dirty pages (a retried
// fsync can report success without the data being durable). Every
// subsequent append, sync, and truncate fails with this error; the
// only recovery is closing the database and reopening it, which
// re-scans the file and replays whatever actually persisted.
var ErrWALPoisoned = errors.New("wal: poisoned by failed fsync (reopen to recover)")

// Log is an append-only write-ahead log file. StageRaw (appending) and
// Truncate are serialized by the caller (the engine's commit lock);
// SyncTo may run concurrently with anything — the group-commit state
// under gcMu coordinates it. end and lsn are atomic only so Size and
// LSN can be polled concurrently by the WAL-bound governor and the
// replication layer.
type Log struct {
	f         *os.File
	path      string
	end       atomic.Int64 // append position (after the last valid record)
	lsn       atomic.Uint64
	base      uint64       // LSN recorded by the base record (mutated only under the commit lock)
	dataStart atomic.Int64 // offset of the first batch record (after any base record)
	sync      bool         // fsync on commit (disabled only for benchmarks)
	met       *obs.WALMetrics

	idMu   sync.Mutex
	replID string

	// Group-commit state. staged/durable are cumulative byte counts
	// since Open (never reset by Truncate, so a SyncTo target stays
	// valid across a concurrent checkpoint): staged counts bytes fully
	// written by StageRaw, durable counts bytes known safe — covered by
	// an fsync, or superseded by a checkpoint's page flush (Truncate).
	gcMu     sync.Mutex
	gcCond   *sync.Cond
	staged   int64
	durable  int64
	pendingN uint64 // commits staged since the last fsync snapshot
	syncing  bool   // a leader's fsync is in flight
	poison   error  // first fsync failure; terminal until reopen
	maxBatch int    // group accumulation cap (only with maxDelay > 0)
	maxDelay time.Duration
}

// Open opens (creating if absent) the log at path. The log is scanned
// to find the end of the valid prefix; a torn tail is truncated away.
// The scan also recovers the replication position: base record plus
// one LSN per intact commit record.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, sync: true, met: &obs.WALMetrics{}}
	l.gcCond = sync.NewCond(&l.gcMu)
	end, commits, err := l.scanEnd()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.end.Store(end)
	l.lsn.Store(l.base + commits)
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	return l, nil
}

// SetSync controls whether commits fsync. Disabling it surrenders
// durability of recent commits on power failure; it exists for
// benchmarking the fsync cost (and matches "group commit off").
func (l *Log) SetSync(sync bool) { l.sync = sync }

// SetGroupCommit tunes the leader's accumulation window: with
// maxDelay > 0 a group-commit leader waits up to maxDelay (or until
// maxBatch commits are staged, whichever first) before issuing its
// fsync, trading commit latency for larger groups. The default (0)
// fsyncs immediately — batching still arises naturally from commits
// that stage while a previous fsync is in flight. Call before traffic.
func (l *Log) SetGroupCommit(maxBatch int, maxDelay time.Duration) {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	l.maxBatch = maxBatch
	l.maxDelay = maxDelay
}

// SetMetrics attaches the WAL metric set; m must be non-nil.
func (l *Log) SetMetrics(m *obs.WALMetrics) { l.met = m }

// scanEnd walks the record frames and returns the offset after the
// last intact record plus the number of intact commit records. A base
// record at offset zero sets l.base, l.replID, and l.dataStart as a
// side effect.
func (l *Log) scanEnd() (int64, uint64, error) {
	var off int64
	var commits uint64
	var hdr [frameHeader]byte
	for {
		_, err := l.f.ReadAt(hdr[:], off)
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return off, commits, nil
		}
		if err != nil {
			return 0, 0, fmt.Errorf("wal: scan: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n < payloadFixed || n > 1<<30 {
			return off, commits, nil // torn or garbage tail
		}
		buf := make([]byte, n)
		if _, err := l.f.ReadAt(buf, off+frameHeader); err != nil {
			return off, commits, nil // torn tail
		}
		if crc32.Checksum(buf, crcTable) != crc {
			return off, commits, nil // torn tail
		}
		switch OpType(buf[0]) {
		case OpCommit:
			commits++
		case OpLSNBase:
			if off == 0 {
				l.base = binary.LittleEndian.Uint64(buf[1:])
				l.replID = string(buf[payloadFixed:])
				l.dataStart.Store(frameHeader + int64(n))
			}
		}
		off += frameHeader + int64(n)
	}
}

// Batch is one committed transaction's worth of redo operations
// together with its exact on-disk encoding — the unit of replication
// shipping and of replay.
type Batch struct {
	TxID uint64
	Ops  []*Op
	Raw  []byte
}

// EncodeBatch builds the on-disk (and on-wire) encoding of one
// committed batch: each op as a record, terminated by a commit record
// for txid.
func EncodeBatch(txid uint64, ops []Op) []byte {
	buf := make([]byte, 0, 256)
	for i := range ops {
		op := ops[i]
		op.TxID = txid
		buf = appendRecord(buf, &op)
	}
	return appendRecord(buf, &Op{Type: OpCommit, TxID: txid})
}

// DecodeBatch parses and CRC-validates one encoded batch: a run of
// operation records for a single transaction terminated by exactly one
// commit record.
func DecodeBatch(raw []byte) (*Batch, error) {
	b := &Batch{Raw: raw}
	var off int
	for off < len(raw) {
		if len(raw)-off < frameHeader {
			return nil, fmt.Errorf("%w: truncated batch frame", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if n < payloadFixed || len(raw)-off-frameHeader < n {
			return nil, fmt.Errorf("%w: truncated batch record", ErrCorrupt)
		}
		payload := raw[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != crc {
			return nil, fmt.Errorf("%w: batch checksum mismatch", ErrCorrupt)
		}
		op, err := decodeOp(payload)
		if err != nil {
			return nil, err
		}
		off += frameHeader + n
		if op.Type == OpCommit {
			if off != len(raw) {
				return nil, fmt.Errorf("%w: data after commit record", ErrCorrupt)
			}
			b.TxID = op.TxID
			for _, p := range b.Ops {
				if p.TxID != op.TxID {
					return nil, fmt.Errorf("%w: mixed transactions in batch", ErrCorrupt)
				}
			}
			return b, nil
		}
		if op.Type == OpLSNBase || op.Type == OpPrepare || op.Type == OpDecide {
			return nil, fmt.Errorf("%w: metadata record inside batch", ErrCorrupt)
		}
		b.Ops = append(b.Ops, op)
	}
	return nil, fmt.Errorf("%w: batch lacks commit record", ErrCorrupt)
}

// Append encodes the operations as one committed batch for txid and
// appends it. This and AppendRaw are the only writing entry points:
// the log never contains uncommitted operations.
func (l *Log) Append(txid uint64, ops []Op) error {
	return l.AppendRaw(EncodeBatch(txid, ops))
}

// AppendRaw appends one pre-encoded committed batch (exactly one
// commit record, as produced by EncodeBatch) and, when sync is
// enabled, fsyncs before returning. Equivalent to StageRaw + SyncTo;
// the group-commit fast path calls the two halves separately so the
// commit lock is released between them.
func (l *Log) AppendRaw(raw []byte) error {
	target, err := l.StageRaw(raw)
	if err != nil {
		return err
	}
	return l.SyncTo(target)
}

// StageRaw writes one pre-encoded committed batch into the file and
// advances the LSN, without waiting for durability. It returns a sync
// target for SyncTo: once SyncTo(target) succeeds, every byte this
// call wrote is durable. The caller must hold the commit lock; the LSN
// advances once the batch bytes are fully written — before any fsync,
// matching what scanEnd would count after a crash.
func (l *Log) StageRaw(raw []byte) (target int64, err error) {
	l.gcMu.Lock()
	if l.poison != nil {
		defer l.gcMu.Unlock()
		return 0, l.poisonErrLocked()
	}
	l.gcMu.Unlock()
	end := l.end.Load()
	if k, ferr := fpAppend.CheckIO(len(raw)); ferr != nil {
		// Simulated crash mid-append: a prefix of the batch lands on
		// disk as a torn tail. l.end is not advanced — on a real crash
		// the in-memory Log is gone anyway, and the next Open truncates
		// the tail.
		if k > 0 {
			l.f.WriteAt(raw[:k], end)
		}
		return 0, fmt.Errorf("wal: append: %w", ferr)
	}
	if _, err := l.f.WriteAt(raw, end); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.end.Store(end + int64(len(raw)))
	l.lsn.Add(1)
	l.met.Appends.Inc()
	l.met.AppendBytes.Add(uint64(len(raw)))
	l.gcMu.Lock()
	l.staged += int64(len(raw))
	l.pendingN++
	target = l.staged
	l.gcMu.Unlock()
	return target, nil
}

// StageMeta writes pre-encoded metadata records (a prepared batch, a
// 2PC decision) into the file WITHOUT advancing the LSN: scanEnd counts
// only commit records, so the replication position is untouched — which
// is exactly why prepared batches must be staged here and not through
// StageRaw. Returns a SyncTo target like StageRaw. The caller must hold
// the commit lock.
func (l *Log) StageMeta(raw []byte) (target int64, err error) {
	l.gcMu.Lock()
	if l.poison != nil {
		defer l.gcMu.Unlock()
		return 0, l.poisonErrLocked()
	}
	l.gcMu.Unlock()
	end := l.end.Load()
	if k, ferr := fpAppend.CheckIO(len(raw)); ferr != nil {
		if k > 0 {
			l.f.WriteAt(raw[:k], end)
		}
		return 0, fmt.Errorf("wal: append: %w", ferr)
	}
	if _, err := l.f.WriteAt(raw, end); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.end.Store(end + int64(len(raw)))
	l.met.Appends.Inc()
	l.met.AppendBytes.Add(uint64(len(raw)))
	l.gcMu.Lock()
	l.staged += int64(len(raw))
	target = l.staged
	l.gcMu.Unlock()
	return target, nil
}

// SyncTo blocks until every byte staged at or before target is
// durable, sharing fsyncs between concurrent committers (group
// commit): the first waiter that finds no fsync in flight becomes the
// leader, snapshots the staged high-water mark, and issues one
// whole-file fsync that covers every follower staged before the
// snapshot. Followers just wait. A no-op when sync is disabled.
//
// On fsync failure the log is poisoned: the batch bytes of every
// transaction in the group are in the file but their durability is
// unknown, so no waiter is acked and every subsequent operation fails
// with ErrWALPoisoned (wrapping the original fsync error) until the
// log is reopened. A commit whose fsync failed is therefore never
// reported successful — it resolves after recovery, from whatever the
// file actually holds.
func (l *Log) SyncTo(target int64) error {
	if !l.sync {
		return nil
	}
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	for {
		if l.poison != nil {
			return l.poisonErrLocked()
		}
		if l.durable >= target {
			return nil
		}
		if !l.syncing {
			break // become the leader
		}
		l.gcCond.Wait() // follow the in-flight fsync
	}
	l.syncing = true
	if l.maxDelay > 0 {
		// Accumulation window: give concurrent committers up to
		// maxDelay to join the group before paying the fsync.
		deadline := time.Now().Add(l.maxDelay)
		for l.pendingN < uint64(l.maxBatch) && l.poison == nil && time.Now().Before(deadline) {
			l.gcMu.Unlock()
			time.Sleep(20 * time.Microsecond)
			l.gcMu.Lock()
		}
	}
	snap := l.staged
	n := l.pendingN
	l.pendingN = 0
	l.gcMu.Unlock()
	// The fsync covers every byte written before the snapshot: StageRaw
	// completes its WriteAt before counting the bytes into staged.
	var err error
	if err = fpFsync.Check(); err == nil {
		start := time.Now()
		if err = l.f.Sync(); err == nil {
			l.met.Fsyncs.Inc()
			l.met.FsyncNS.Since(start)
		}
	}
	l.gcMu.Lock()
	l.syncing = false
	if err != nil {
		l.poison = fmt.Errorf("wal: sync: %w", err)
		l.gcCond.Broadcast()
		return l.poisonErrLocked()
	}
	if snap > l.durable {
		l.durable = snap
	}
	l.met.GroupCommits.Inc()
	l.met.GroupCommitSize.Add(n)
	l.gcCond.Broadcast()
	return nil
}

// SyncAll makes every batch staged so far durable (a no-op when sync
// is disabled). The replication source uses it before advertising a
// position to a new subscriber.
func (l *Log) SyncAll() error {
	l.gcMu.Lock()
	target := l.staged
	l.gcMu.Unlock()
	return l.SyncTo(target)
}

// poisonErrLocked wraps the stored fsync failure so callers can match
// both ErrWALPoisoned and the root cause. Callers hold gcMu.
func (l *Log) poisonErrLocked() error {
	return fmt.Errorf("%w: %w", ErrWALPoisoned, l.poison)
}

func appendRecord(buf []byte, op *Op) []byte {
	plen := payloadFixed + len(op.Image)
	var hdr [frameHeader]byte
	payload := make([]byte, plen)
	payload[0] = byte(op.Type)
	binary.LittleEndian.PutUint64(payload[1:], op.TxID)
	binary.LittleEndian.PutUint64(payload[9:], op.OID)
	binary.LittleEndian.PutUint32(payload[17:], op.Version)
	binary.LittleEndian.PutUint32(payload[21:], op.ClassID)
	copy(payload[payloadFixed:], op.Image)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(plen))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Replay feeds every operation of every committed batch, in log order,
// to fn. Batches lacking a commit record (a crash between WriteAt and
// the full batch landing) are skipped.
func (l *Log) Replay(fn func(op *Op) error) error {
	return l.ReplayBatches(func(_ uint64, b *Batch) error {
		for _, op := range b.Ops {
			if err := fn(op); err != nil {
				return err
			}
		}
		return nil
	})
}

type pendingBatch struct {
	ops []*Op
	raw []byte
}

// ReplayBatches feeds every committed batch, in commit order and with
// its LSN, to fn. The Raw bytes handed to fn are rebuilt per batch and
// safe to retain. Callers must hold the commit lock (or otherwise
// exclude Truncate) if the log is live.
func (l *Log) ReplayBatches(fn func(lsn uint64, b *Batch) error) error {
	var off int64
	lsn := l.base
	pending := make(map[uint64]*pendingBatch)
	var hdr [frameHeader]byte
	for off < l.end.Load() {
		if err := fpReplay.Check(); err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		if _, err := l.f.ReadAt(hdr[:], off); err != nil {
			return fmt.Errorf("wal: replay read: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		buf := make([]byte, n)
		if _, err := l.f.ReadAt(buf, off+frameHeader); err != nil {
			return fmt.Errorf("wal: replay read payload: %w", err)
		}
		if crc32.Checksum(buf, crcTable) != crc {
			return fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		op, err := decodeOp(buf)
		if err != nil {
			return err
		}
		off += frameHeader + int64(n)
		if op.Type == OpLSNBase || op.Type == OpDecide {
			continue
		}
		if op.Type == OpPrepare {
			// The preceding records for this TxID are a prepared (in-doubt)
			// batch, not a committed one: they must never reach committed
			// replay or the replication announce stream. A decide-commit
			// re-logs them as an ordinary batch, which replays normally.
			delete(pending, op.TxID)
			continue
		}
		p := pending[op.TxID]
		if p == nil {
			p = &pendingBatch{}
			pending[op.TxID] = p
		}
		p.raw = append(p.raw, hdr[:]...)
		p.raw = append(p.raw, buf...)
		if op.Type != OpCommit {
			p.ops = append(p.ops, op)
			continue
		}
		delete(pending, op.TxID)
		lsn++
		if err := fn(lsn, &Batch{TxID: op.TxID, Ops: p.ops, Raw: p.raw}); err != nil {
			return err
		}
	}
	return nil
}

// EncodePrepared builds the on-disk encoding of one prepared (in-doubt)
// batch: each op as a record, terminated by a prepare record carrying
// the global transaction id. Staged via StageMeta — never StageRaw —
// because prepared batches must not advance the LSN.
func EncodePrepared(txid uint64, gid string, ops []Op) []byte {
	buf := make([]byte, 0, 256)
	for i := range ops {
		op := ops[i]
		op.TxID = txid
		buf = appendRecord(buf, &op)
	}
	return appendRecord(buf, &Op{Type: OpPrepare, TxID: txid, Image: []byte(gid)})
}

// EncodeDecide builds a 2PC decision record for gid: commit when commit
// is true, abort otherwise.
func EncodeDecide(txid uint64, gid string, commit bool) []byte {
	var v uint32
	if commit {
		v = 1
	}
	return appendRecord(nil, &Op{Type: OpDecide, TxID: txid, Version: v, Image: []byte(gid)})
}

// Prepared is one in-doubt transaction recovered from the log: its redo
// operations are durable behind a prepare record but no decision has
// been logged. The coordinator's decision (or a presumed abort) resolves
// it.
type Prepared struct {
	GID  string
	TxID uint64
	Ops  []*Op
}

// ReplayPrepared scans the log for two-phase-commit state: it returns
// the still-undecided prepared transactions in log order, plus every
// decision record seen (gid -> committed). A prepared transaction whose
// gid has a decision is resolved — a decide-commit staged the ordinary
// committed batch alongside it (which ReplayBatches applies), and a
// decide-abort simply discards it. Callers must hold the commit lock
// (or otherwise exclude Truncate) if the log is live.
func (l *Log) ReplayPrepared() ([]*Prepared, map[string]bool, error) {
	var off int64
	pending := make(map[uint64][]*Op)
	var order []*Prepared
	decisions := make(map[string]bool)
	var hdr [frameHeader]byte
	for off < l.end.Load() {
		if _, err := l.f.ReadAt(hdr[:], off); err != nil {
			return nil, nil, fmt.Errorf("wal: replay read: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		buf := make([]byte, n)
		if _, err := l.f.ReadAt(buf, off+frameHeader); err != nil {
			return nil, nil, fmt.Errorf("wal: replay read payload: %w", err)
		}
		if crc32.Checksum(buf, crcTable) != crc {
			return nil, nil, fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		op, err := decodeOp(buf)
		if err != nil {
			return nil, nil, err
		}
		off += frameHeader + int64(n)
		switch op.Type {
		case OpLSNBase:
		case OpPrepare:
			order = append(order, &Prepared{GID: string(op.Image), TxID: op.TxID, Ops: pending[op.TxID]})
			delete(pending, op.TxID)
		case OpDecide:
			decisions[string(op.Image)] = op.Version == 1
		case OpCommit:
			delete(pending, op.TxID)
		default:
			pending[op.TxID] = append(pending[op.TxID], op)
		}
	}
	out := order[:0]
	for _, p := range order {
		if _, decided := decisions[p.GID]; !decided {
			out = append(out, p)
		}
	}
	return out, decisions, nil
}

func decodeOp(buf []byte) (*Op, error) {
	if len(buf) < payloadFixed {
		return nil, ErrCorrupt
	}
	op := &Op{
		Type:    OpType(buf[0]),
		TxID:    binary.LittleEndian.Uint64(buf[1:]),
		OID:     binary.LittleEndian.Uint64(buf[9:]),
		Version: binary.LittleEndian.Uint32(buf[17:]),
		ClassID: binary.LittleEndian.Uint32(buf[21:]),
	}
	if op.Type == OpInvalid || op.Type > OpDecide {
		return nil, fmt.Errorf("%w: bad op type %d", ErrCorrupt, buf[0])
	}
	if len(buf) > payloadFixed {
		op.Image = append([]byte(nil), buf[payloadFixed:]...)
	}
	return op, nil
}

// Truncate empties the log, preserving the replication position: a
// fresh file holding only a base record (current LSN + replication id)
// is renamed over the log, so the truncation and the base update are
// one atomic operation. Called after a checkpoint has made every
// logged effect durable in the data file.
//
// Truncate holds the group-commit lock for its whole body: it first
// waits out any in-flight leader fsync (which targets the file being
// swapped away), and no new leader can start one until the swap is
// complete. It refuses to run on a poisoned log — the failed group's
// effects are applied in memory, and checkpointing would persist them
// even though their commits were reported failed. On success the
// durable mark jumps to the staged mark: the checkpoint's page flush
// made every applied batch durable through the data file.
func (l *Log) Truncate() error {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	for l.syncing {
		l.gcCond.Wait()
	}
	if l.poison != nil {
		return l.poisonErrLocked()
	}
	if err := fpTruncate.Check(); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	l.idMu.Lock()
	replID := l.replID
	l.idMu.Unlock()
	lsn := l.lsn.Load()
	rec := appendRecord(nil, &Op{Type: OpLSNBase, TxID: lsn, Image: []byte(replID)})
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := f.WriteAt(rec, 0); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if d, err := os.Open(filepath.Dir(l.path)); err == nil {
		d.Sync() // best-effort: make the rename itself durable
		d.Close()
	}
	old := l.f
	l.f = f
	old.Close()
	l.base = lsn
	l.dataStart.Store(int64(len(rec)))
	l.end.Store(int64(len(rec)))
	l.durable = l.staged // every applied batch is durable via the data file
	l.pendingN = 0
	l.gcCond.Broadcast()
	return nil
}

// LSN returns the log sequence number of the last committed batch
// (safe to poll concurrently with appends).
func (l *Log) LSN() uint64 { return l.lsn.Load() }

// BaseLSN returns the LSN at the last truncation: batches with LSN in
// (BaseLSN, LSN] are present in the file. Callers must hold the commit
// lock if the log is live.
func (l *Log) BaseLSN() uint64 { return l.base }

// ForceLSN overrides the live LSN. Used only when a replica finishes a
// full resync: its object state now equals the primary's at the given
// LSN, whatever its local log counted before. Callers must hold the
// commit lock.
func (l *Log) ForceLSN(lsn uint64) { l.lsn.Store(lsn) }

// ReplID returns the replication id persisted in the base record, or
// "" if the log has never been truncated with one.
func (l *Log) ReplID() string {
	l.idMu.Lock()
	defer l.idMu.Unlock()
	return l.replID
}

// SetReplID sets the replication id; it is persisted by the next
// Truncate.
func (l *Log) SetReplID(id string) {
	l.idMu.Lock()
	l.replID = id
	l.idMu.Unlock()
}

// Size returns the length of the batch data in bytes — the replayable
// backlog since the last truncation, excluding the base record (safe
// to poll concurrently with appends).
func (l *Log) Size() int64 { return l.end.Load() - l.dataStart.Load() }

// Empty reports whether the log holds no committed batches (a base
// record alone still counts as empty).
func (l *Log) Empty() bool { return l.end.Load() == l.dataStart.Load() }

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

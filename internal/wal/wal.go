// Package wal implements the write-ahead log of an Ode database.
//
// The logging discipline is deliberately simple and provably sound for
// this system's concurrency design:
//
//   - Transactions buffer their writes privately (no-steal): nothing an
//     uncommitted transaction does ever reaches the shared buffer pool,
//     so the log never needs undo information.
//   - At commit, the transaction's logical operations (object puts and
//     deletes, with after-images) are appended as one batch terminated
//     by a commit record, then fsynced (no-force for data pages).
//   - A checkpoint flushes every dirty page (atomically, via the
//     double-write buffer) and then truncates the log: everything in
//     the log is always "since the last checkpoint".
//   - Recovery therefore replays the whole log in order, applying the
//     operations of batches that have a commit record and ignoring a
//     torn tail. Replay is idempotent: operations are upserts/deletes
//     keyed by object id and version.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
	"time"

	"ode/internal/failpoint"
	"ode/internal/obs"
)

// Failpoint sites on the log's I/O paths (no-ops unless armed; see
// docs/TESTING.md).
var (
	// fpAppend fires in Append after the batch buffer is built. Partial
	// actions persist a prefix of the batch — a torn log tail that
	// scanEnd must truncate on the next open.
	fpAppend = failpoint.New("wal.append")
	// fpFsync fires in Append between the batch write and the fsync.
	// The batch bytes are already in the file, so a commit that fails
	// here may still be durable — the classic fsync-error ambiguity.
	fpFsync = failpoint.New("wal.fsync")
	// fpTruncate fires at the top of Truncate (checkpoint log reset).
	fpTruncate = failpoint.New("wal.truncate")
	// fpReplay fires once per record during Replay, failing recovery
	// midway.
	fpReplay = failpoint.New("wal.replay")
)

// OpType enumerates logical redo operations.
type OpType uint8

// The operation types. OpCommit terminates a transaction's batch; a
// batch without a trailing OpCommit is discarded at replay.
const (
	OpInvalid       OpType = iota
	OpPut                  // set the current image of an object
	OpPutVersion           // store a frozen version image
	OpDelete               // remove an object and all its versions
	OpDeleteVersion        // remove one frozen version
	OpCommit
)

func (t OpType) String() string {
	switch t {
	case OpPut:
		return "put"
	case OpPutVersion:
		return "put-version"
	case OpDelete:
		return "delete"
	case OpDeleteVersion:
		return "delete-version"
	case OpCommit:
		return "commit"
	}
	return "invalid"
}

// Op is one logical redo operation.
type Op struct {
	Type    OpType
	TxID    uint64
	OID     uint64
	Version uint32 // current version for OpPut; frozen version for OpPutVersion/OpDeleteVersion
	ClassID uint32
	Image   []byte // serialized object state for the put ops
}

// Record framing on disk:
//
//	[0:4)  payload length
//	[4:8)  CRC32C of payload
//	[8:..) payload
//
// Payload: type(1) txid(8) oid(8) version(4) classid(4) image bytes.
const (
	frameHeader  = 8
	payloadFixed = 1 + 8 + 8 + 4 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a malformed (non-torn-tail) log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only write-ahead log file. Append and Truncate are
// serialized by the caller (the engine's commit lock); end is atomic
// only so Size can be polled concurrently by the WAL-bound governor
// (backpressure stalls, the background checkpointer).
type Log struct {
	f    *os.File
	path string
	end  atomic.Int64 // append position (after the last valid record)
	sync bool         // fsync on commit (disabled only for benchmarks)
	met  *obs.WALMetrics
}

// Open opens (creating if absent) the log at path. The log is scanned
// to find the end of the valid prefix; a torn tail is truncated away.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, sync: true, met: &obs.WALMetrics{}}
	end, err := l.scanEnd()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.end.Store(end)
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	return l, nil
}

// SetSync controls whether commits fsync. Disabling it surrenders
// durability of recent commits on power failure; it exists for
// benchmarking the fsync cost (and matches "group commit off").
func (l *Log) SetSync(sync bool) { l.sync = sync }

// SetMetrics attaches the WAL metric set; m must be non-nil.
func (l *Log) SetMetrics(m *obs.WALMetrics) { l.met = m }

// scanEnd walks the record frames and returns the offset after the last
// intact record.
func (l *Log) scanEnd() (int64, error) {
	var off int64
	var hdr [frameHeader]byte
	for {
		_, err := l.f.ReadAt(hdr[:], off)
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return off, nil
		}
		if err != nil {
			return 0, fmt.Errorf("wal: scan: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n < payloadFixed || n > 1<<30 {
			return off, nil // torn or garbage tail
		}
		buf := make([]byte, n)
		if _, err := l.f.ReadAt(buf, off+frameHeader); err != nil {
			return off, nil // torn tail
		}
		if crc32.Checksum(buf, crcTable) != crc {
			return off, nil // torn tail
		}
		off += frameHeader + int64(n)
	}
}

// Append writes the operations followed by a commit record for txid and
// (when sync is enabled) fsyncs. This is the only writing entry point:
// the log never contains uncommitted operations.
func (l *Log) Append(txid uint64, ops []Op) error {
	buf := make([]byte, 0, 256)
	for i := range ops {
		op := ops[i]
		op.TxID = txid
		buf = appendRecord(buf, &op)
	}
	buf = appendRecord(buf, &Op{Type: OpCommit, TxID: txid})
	end := l.end.Load()
	if k, ferr := fpAppend.CheckIO(len(buf)); ferr != nil {
		// Simulated crash mid-append: a prefix of the batch lands on
		// disk as a torn tail. l.end is not advanced — on a real crash
		// the in-memory Log is gone anyway, and the next Open truncates
		// the tail.
		if k > 0 {
			l.f.WriteAt(buf[:k], end)
		}
		return fmt.Errorf("wal: append: %w", ferr)
	}
	if _, err := l.f.WriteAt(buf, end); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.end.Store(end + int64(len(buf)))
	l.met.Appends.Inc()
	l.met.AppendBytes.Add(uint64(len(buf)))
	if l.sync {
		if err := fpFsync.Check(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.met.Fsyncs.Inc()
		l.met.FsyncNS.Since(start)
	}
	return nil
}

func appendRecord(buf []byte, op *Op) []byte {
	plen := payloadFixed + len(op.Image)
	var hdr [frameHeader]byte
	payload := make([]byte, plen)
	payload[0] = byte(op.Type)
	binary.LittleEndian.PutUint64(payload[1:], op.TxID)
	binary.LittleEndian.PutUint64(payload[9:], op.OID)
	binary.LittleEndian.PutUint32(payload[17:], op.Version)
	binary.LittleEndian.PutUint32(payload[21:], op.ClassID)
	copy(payload[payloadFixed:], op.Image)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(plen))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Replay feeds every operation of every committed batch, in log order,
// to fn. Batches lacking a commit record (a crash between WriteAt and
// the full batch landing) are skipped.
func (l *Log) Replay(fn func(op *Op) error) error {
	var off int64
	pending := make(map[uint64][]*Op)
	var hdr [frameHeader]byte
	for off < l.end.Load() {
		if err := fpReplay.Check(); err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		if _, err := l.f.ReadAt(hdr[:], off); err != nil {
			return fmt.Errorf("wal: replay read: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		buf := make([]byte, n)
		if _, err := l.f.ReadAt(buf, off+frameHeader); err != nil {
			return fmt.Errorf("wal: replay read payload: %w", err)
		}
		if crc32.Checksum(buf, crcTable) != crc {
			return fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		op, err := decodeOp(buf)
		if err != nil {
			return err
		}
		off += frameHeader + int64(n)
		if op.Type == OpCommit {
			for _, p := range pending[op.TxID] {
				if err := fn(p); err != nil {
					return err
				}
			}
			delete(pending, op.TxID)
			continue
		}
		pending[op.TxID] = append(pending[op.TxID], op)
	}
	return nil
}

func decodeOp(buf []byte) (*Op, error) {
	if len(buf) < payloadFixed {
		return nil, ErrCorrupt
	}
	op := &Op{
		Type:    OpType(buf[0]),
		TxID:    binary.LittleEndian.Uint64(buf[1:]),
		OID:     binary.LittleEndian.Uint64(buf[9:]),
		Version: binary.LittleEndian.Uint32(buf[17:]),
		ClassID: binary.LittleEndian.Uint32(buf[21:]),
	}
	if op.Type == OpInvalid || op.Type > OpCommit {
		return nil, fmt.Errorf("%w: bad op type %d", ErrCorrupt, buf[0])
	}
	if len(buf) > payloadFixed {
		op.Image = append([]byte(nil), buf[payloadFixed:]...)
	}
	return op, nil
}

// Truncate empties the log. Called after a checkpoint has made every
// logged effect durable in the data file.
func (l *Log) Truncate() error {
	if err := fpTruncate.Check(); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	l.end.Store(0)
	return l.f.Sync()
}

// Size returns the current log length in bytes (safe to poll
// concurrently with appends).
func (l *Log) Size() int64 { return l.end.Load() }

// Empty reports whether the log holds no records.
func (l *Log) Empty() bool { return l.end.Load() == 0 }

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

package wal

import (
	"testing"
)

// stagePrepared stages and fsyncs one prepared record.
func stagePrepared(t testing.TB, l *Log, txid uint64, gid string, ops []Op) {
	t.Helper()
	target, err := l.StageMeta(EncodePrepared(txid, gid, ops))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncTo(target); err != nil {
		t.Fatal(err)
	}
}

// stageDecide stages and fsyncs one decision record.
func stageDecide(t testing.TB, l *Log, txid uint64, gid string, commit bool) {
	t.Helper()
	target, err := l.StageMeta(EncodeDecide(txid, gid, commit))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncTo(target); err != nil {
		t.Fatal(err)
	}
}

// TestReplayPreparedUndecided: prepared records come back in log
// order, with their ops intact, until a decision resolves them.
func TestReplayPreparedUndecided(t *testing.T) {
	l, path := openTestLog(t)
	stagePrepared(t, l, 7, "s0-a-1", []Op{put(10, "x"), {Type: OpDelete, OID: 4}})
	stagePrepared(t, l, 9, "s1-b-2", []Op{put(11, "y")})
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	preps, decisions, err := l2.ReplayPrepared()
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 0 {
		t.Fatalf("decisions = %v, want none", decisions)
	}
	if len(preps) != 2 || preps[0].GID != "s0-a-1" || preps[1].GID != "s1-b-2" {
		t.Fatalf("preps = %+v, want log order", preps)
	}
	if preps[0].TxID != 7 || len(preps[0].Ops) != 2 ||
		preps[0].Ops[0].OID != 10 || string(preps[0].Ops[0].Image) != "x" ||
		preps[0].Ops[1].Type != OpDelete || preps[0].Ops[1].OID != 4 {
		t.Fatalf("ops not preserved: %+v", preps[0])
	}
}

// TestReplayPreparedDecided: a decision removes its gid from the
// undecided set and surfaces in the decision map instead.
func TestReplayPreparedDecided(t *testing.T) {
	l, path := openTestLog(t)
	stagePrepared(t, l, 1, "g-commit", []Op{put(10, "x")})
	stagePrepared(t, l, 2, "g-abort", []Op{put(11, "y")})
	stagePrepared(t, l, 3, "g-open", []Op{put(12, "z")})
	stageDecide(t, l, 1, "g-commit", true)
	stageDecide(t, l, 2, "g-abort", false)
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	preps, decisions, err := l2.ReplayPrepared()
	if err != nil {
		t.Fatal(err)
	}
	if len(preps) != 1 || preps[0].GID != "g-open" {
		t.Fatalf("undecided = %+v, want only g-open", preps)
	}
	if commit, ok := decisions["g-commit"]; !ok || !commit {
		t.Fatalf("decisions[g-commit] = %v,%v, want commit", commit, ok)
	}
	if commit, ok := decisions["g-abort"]; !ok || commit {
		t.Fatalf("decisions[g-abort] = %v,%v, want abort", commit, ok)
	}
}

// TestPreparedRecordsInvisibleToLSN: metadata records must not move
// the committed-batch LSN, at stage time or across a reopen.
func TestPreparedRecordsInvisibleToLSN(t *testing.T) {
	l, path := openTestLog(t)
	if err := l.Append(1, []Op{put(10, "a")}); err != nil {
		t.Fatal(err)
	}
	before := l.LSN()
	stagePrepared(t, l, 2, "g-1", []Op{put(11, "b")})
	stageDecide(t, l, 2, "g-1", false)
	if got := l.LSN(); got != before {
		t.Fatalf("LSN moved %d -> %d on metadata records", before, got)
	}
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LSN(); got != before {
		t.Fatalf("LSN after reopen = %d, want %d", got, before)
	}
}

// TestReplaySkipsPreparedBatches: ordinary committed replay must not
// apply ops that only ever reached a prepared record.
func TestReplaySkipsPreparedBatches(t *testing.T) {
	l, path := openTestLog(t)
	if err := l.Append(1, []Op{put(10, "committed")}); err != nil {
		t.Fatal(err)
	}
	stagePrepared(t, l, 2, "g-1", []Op{put(11, "indoubt")})
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var oids []uint64
	if err := l2.Replay(func(op *Op) error {
		oids = append(oids, op.OID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(oids) != 1 || oids[0] != 10 {
		t.Fatalf("replayed oids %v, want only the committed 10", oids)
	}
}

package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"testing"
)

// encodePayload builds the frame payload (without the length/CRC
// header) for an op, mirroring appendRecord.
func encodePayload(op *Op) []byte {
	buf := appendRecord(nil, op)
	return buf[frameHeader:]
}

// FuzzDecodeOp throws arbitrary bytes at the WAL record decoder. The
// decoder sits behind a CRC check in Replay, but recovery code must
// never trust that: whatever the bytes, decodeOp must not panic, must
// reject invalid op types, and must round-trip anything it accepts.
func FuzzDecodeOp(f *testing.F) {
	seeds := []*Op{
		{Type: OpPut, TxID: 1, OID: 42, Version: 3, ClassID: 7, Image: []byte("image-bytes")},
		{Type: OpPutVersion, TxID: 9, OID: 1, Version: 1, ClassID: 2, Image: bytes.Repeat([]byte{0xAB}, 100)},
		{Type: OpDelete, TxID: 2, OID: 7},
		{Type: OpDeleteVersion, TxID: 2, OID: 7, Version: 5},
		{Type: OpCommit, TxID: 3},
	}
	for _, op := range seeds {
		f.Add(encodePayload(op))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0}, payloadFixed))
	f.Add(bytes.Repeat([]byte{0xFF}, payloadFixed+16))

	f.Fuzz(func(t *testing.T, data []byte) {
		op, err := decodeOp(data)
		if err != nil {
			return
		}
		if op.Type == OpInvalid || op.Type > OpCommit {
			t.Fatalf("decodeOp accepted invalid op type %d", op.Type)
		}
		if len(data) > payloadFixed && len(op.Image) != len(data)-payloadFixed {
			t.Fatalf("image length %d, want %d", len(op.Image), len(data)-payloadFixed)
		}
		// Round-trip: re-encoding the decoded op reproduces the input.
		again := encodePayload(op)
		if !bytes.Equal(again, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, again)
		}
		// The decoded image must be a copy, not an alias of the input.
		if len(op.Image) > 0 {
			data[payloadFixed] ^= 0xFF
			if op.Image[0] == data[payloadFixed] {
				t.Fatal("decoded image aliases the input buffer")
			}
		}
	})
}

// FuzzReplayFrame feeds arbitrary bytes through the framing layer: a
// log whose file contains the fuzz input must either replay cleanly or
// fail with an error — never panic, never loop forever.
func FuzzReplayFrame(f *testing.F) {
	valid := appendRecord(nil, &Op{Type: OpPut, TxID: 1, OID: 5, ClassID: 1, Image: []byte("x")})
	valid = appendRecord(valid, &Op{Type: OpCommit, TxID: 1})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(func() []byte { // oversized length prefix
		var hdr [frameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:], 1<<31)
		return hdr[:]
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := dir + "/fuzz.wal"
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path)
		if err != nil {
			return
		}
		defer l.Close()
		_ = l.Replay(func(op *Op) error { return nil })
	})
}

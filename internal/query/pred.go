// Package query implements the O++ query-processing constructs (paper,
// section 3): the forall iterator over clusters, cluster hierarchies
// and sets, with suchthat filtering and by ordering; multi-variable
// (join) iteration with nested-loop, index-nested-loop, and hash
// strategies; and fixpoint (visit-inserted) iteration for recursive
// queries.
//
// The package answers the paper's CODASYL criticism: "By introducing
// clusters, sets, and high-level iteration facilities ... O++ provides
// an alternative to using object ids to navigate through the database."
// A simple optimizer turns indexable suchthat predicates into index
// range scans.
package query

import (
	"fmt"

	"ode/internal/core"
)

// Item is one binding of a forall loop variable: the object id and the
// transaction-visible state of the object.
type Item struct {
	OID core.OID
	Obj *core.Object
}

// Pred is a suchthat predicate over a loop variable.
type Pred interface {
	// Eval tests the predicate against an item.
	Eval(st core.Store, it Item) (bool, error)
}

// CmpOp is a comparison operator of a field predicate.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// FieldPred compares a field of the loop variable against a constant.
// It is the indexable predicate form: the optimizer can turn it into an
// index range scan.
type FieldPred struct {
	Name  string
	Op    CmpOp
	Value core.Value
}

// Field starts a field predicate builder.
func Field(name string) FieldBuilder { return FieldBuilder{name: name} }

// FieldBuilder builds FieldPreds fluently.
type FieldBuilder struct{ name string }

// Eq builds name == v.
func (b FieldBuilder) Eq(v core.Value) FieldPred { return FieldPred{b.name, OpEq, v} }

// Ne builds name != v.
func (b FieldBuilder) Ne(v core.Value) FieldPred { return FieldPred{b.name, OpNe, v} }

// Lt builds name < v.
func (b FieldBuilder) Lt(v core.Value) FieldPred { return FieldPred{b.name, OpLt, v} }

// Le builds name <= v.
func (b FieldBuilder) Le(v core.Value) FieldPred { return FieldPred{b.name, OpLe, v} }

// Gt builds name > v.
func (b FieldBuilder) Gt(v core.Value) FieldPred { return FieldPred{b.name, OpGt, v} }

// Ge builds name >= v.
func (b FieldBuilder) Ge(v core.Value) FieldPred { return FieldPred{b.name, OpGe, v} }

// Eval implements Pred.
func (p FieldPred) Eval(_ core.Store, it Item) (bool, error) {
	v, err := it.Obj.Get(p.Name)
	if err != nil {
		return false, err
	}
	c := v.Compare(p.Value)
	switch p.Op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("query: bad comparison op %d", p.Op)
}

func (p FieldPred) String() string {
	return fmt.Sprintf("%s %s %s", p.Name, p.Op, p.Value)
}

// indexBounds translates the predicate to inclusive index-scan bounds
// (Null = open). The residual flag reports whether re-checking the
// predicate per item is still required (true for OpNe).
func (p FieldPred) indexBounds() (lo, hi core.Value, residual bool, ok bool) {
	switch p.Op {
	case OpEq:
		return p.Value, p.Value, false, true
	case OpLe:
		return core.Null, p.Value, false, true
	case OpGe:
		return p.Value, core.Null, false, true
	case OpLt:
		// No exclusive bound in the index API: scan <= and re-check.
		return core.Null, p.Value, true, true
	case OpGt:
		return p.Value, core.Null, true, true
	}
	return core.Null, core.Null, false, false
}

// AndPred is a conjunction.
type AndPred []Pred

// And conjoins predicates.
func And(ps ...Pred) Pred {
	if len(ps) == 1 {
		return ps[0]
	}
	return AndPred(ps)
}

// Eval implements Pred.
func (a AndPred) Eval(st core.Store, it Item) (bool, error) {
	for _, p := range a {
		ok, err := p.Eval(st, it)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// OrPred is a disjunction.
type OrPred []Pred

// Or disjoins predicates.
func Or(ps ...Pred) Pred {
	if len(ps) == 1 {
		return ps[0]
	}
	return OrPred(ps)
}

// Eval implements Pred.
func (o OrPred) Eval(st core.Store, it Item) (bool, error) {
	for _, p := range o {
		ok, err := p.Eval(st, it)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// NotPred negates a predicate.
type NotPred struct{ P Pred }

// Not negates p.
func Not(p Pred) Pred { return NotPred{P: p} }

// Eval implements Pred.
func (n NotPred) Eval(st core.Store, it Item) (bool, error) {
	ok, err := n.P.Eval(st, it)
	return !ok, err
}

// FnPred wraps an arbitrary Go predicate (the general suchthat form;
// never indexable).
type FnPred func(st core.Store, it Item) (bool, error)

// Fn wraps a plain function as a predicate.
func Fn(f func(st core.Store, it Item) (bool, error)) Pred { return FnPred(f) }

// Eval implements Pred.
func (f FnPred) Eval(st core.Store, it Item) (bool, error) { return f(st, it) }

// IsClass tests the dynamic class of the loop variable: the O++
// `p is persistent student *` test.
type IsClass struct{ Class *core.Class }

// Is builds a dynamic-class test.
func Is(c *core.Class) Pred { return IsClass{Class: c} }

// Eval implements Pred.
func (p IsClass) Eval(_ core.Store, it Item) (bool, error) {
	return it.Obj.Class().IsA(p.Class), nil
}

package query

import (
	"fmt"
	"sync/atomic"

	"ode/internal/core"
)

// JoinStrategy selects the physical join algorithm.
type JoinStrategy uint8

// Join strategies. Auto picks index-nested-loop when the right side has
// a usable index on the join field, hash join otherwise (for
// equi-joins); theta joins always run as nested loops.
const (
	Auto JoinStrategy = iota
	NestedLoop
	IndexNestedLoop
	HashJoin
)

func (s JoinStrategy) String() string {
	switch s {
	case NestedLoop:
		return "nested-loop"
	case IndexNestedLoop:
		return "index-nested-loop"
	case HashJoin:
		return "hash"
	}
	return "auto"
}

// Join is a two-variable forall loop:
//
//	forall x in C1, forall y in C2 suchthat (x.f == y.g) { body }
//
// (the paper's answer to the "arbitrary join queries" criticism of
// object databases, section 3.1).
type Join struct {
	left, right *Query
	leftField   string
	rightField  string
	theta       func(a, b Item) (bool, error)
	strategy    JoinStrategy
	plan        string
}

// JoinWith pairs two forall loops.
func (q *Query) JoinWith(r *Query) *Join {
	return &Join{left: q, right: r, strategy: Auto}
}

// OnEq sets an equi-join condition left.leftField == right.rightField.
func (j *Join) OnEq(leftField, rightField string) *Join {
	j.leftField, j.rightField = leftField, rightField
	return j
}

// OnTheta sets an arbitrary join condition (forces nested loop).
func (j *Join) OnTheta(fn func(a, b Item) (bool, error)) *Join {
	j.theta = fn
	return j
}

// Strategy forces a physical strategy (ablation benchmarks).
func (j *Join) Strategy(s JoinStrategy) *Join {
	j.strategy = s
	return j
}

// Parallel partitions the outer (left) side of the join across n
// workers; the inner side — collected snapshot, hash table, or index
// probes — is built serially and then only read concurrently. The pair
// body must be safe for concurrent invocation, as with Query.Parallel.
func (j *Join) Parallel(n int) *Join {
	j.left.Parallel(n)
	return j
}

// Plan describes the strategy chosen by the last run.
func (j *Join) Plan() string { return j.plan }

// Do runs the join, invoking fn for every matching pair. Join loops use
// snapshot semantics on both sides.
func (j *Join) Do(fn func(a, b Item) (bool, error)) error {
	// The sides run as internal subqueries: they do the scanning work
	// (rows_scanned/rows_yielded) but only the join itself counts as a
	// plan choice.
	met := &j.left.tx.Metrics().Query
	met.Joins.Inc()
	leftInt, rightInt := j.left.internal, j.right.internal
	j.left.internal, j.right.internal = true, true
	defer func() { j.left.internal, j.right.internal = leftInt, rightInt }()
	if j.theta != nil {
		j.plan = "nested-loop(theta)"
		met.PlanJoinNestedLoop.Inc()
		return j.nestedLoopTheta(fn)
	}
	if j.leftField == "" || j.rightField == "" {
		return fmt.Errorf("query: join requires OnEq or OnTheta")
	}
	s := j.resolveStrategy()
	j.plan = s.String()
	switch s {
	case NestedLoop:
		met.PlanJoinNestedLoop.Inc()
		return j.nestedLoopEq(fn)
	case IndexNestedLoop:
		met.PlanJoinIndexNL.Inc()
		return j.indexNestedLoop(fn)
	case HashJoin:
		met.PlanJoinHash.Inc()
		return j.hashJoin(fn)
	}
	return fmt.Errorf("query: unknown join strategy %d", s)
}

// Count runs the join and counts pairs.
func (j *Join) Count() (int, error) {
	var n atomic.Int64
	err := j.Do(func(_, _ Item) (bool, error) {
		n.Add(1)
		return true, nil
	})
	return int(n.Load()), err
}

func (j *Join) nestedLoopTheta(fn func(a, b Item) (bool, error)) error {
	rights, err := j.right.Snapshot().Collect()
	if err != nil {
		return err
	}
	return j.left.Snapshot().Do(func(a Item) (bool, error) {
		for _, b := range rights {
			ok, err := j.theta(a, b)
			if err != nil {
				return false, err
			}
			if ok {
				cont, err := fn(a, b)
				if err != nil || !cont {
					return false, err
				}
			}
		}
		return true, nil
	})
}

func (j *Join) nestedLoopEq(fn func(a, b Item) (bool, error)) error {
	rights, err := j.right.Snapshot().Collect()
	if err != nil {
		return err
	}
	return j.left.Snapshot().Do(func(a Item) (bool, error) {
		av, err := a.Obj.Get(j.leftField)
		if err != nil {
			return false, err
		}
		for _, b := range rights {
			bv, err := b.Obj.Get(j.rightField)
			if err != nil {
				return false, err
			}
			if av.Equal(bv) {
				cont, err := fn(a, b)
				if err != nil || !cont {
					return false, err
				}
			}
		}
		return true, nil
	})
}

// indexNestedLoop probes the right side's index once per left binding.
func (j *Join) indexNestedLoop(fn func(a, b Item) (bool, error)) error {
	return j.left.Snapshot().Do(func(a Item) (bool, error) {
		av, err := a.Obj.Get(j.leftField)
		if err != nil {
			return false, err
		}
		// Clone the right query per probe so plans don't interfere.
		probe := *j.right
		probe.internal = true
		probe.pred = nil
		if j.right.pred != nil {
			probe.pred = j.right.pred
		}
		probe = *probe.SuchThat(Field(j.rightField).Eq(av))
		items, err := probe.Snapshot().Collect()
		if err != nil {
			return false, err
		}
		for _, b := range items {
			cont, err := fn(a, b)
			if err != nil || !cont {
				return false, err
			}
		}
		return true, nil
	})
}

// hashJoin builds a hash table over the right side keyed by the join
// field value, then probes it with each left binding.
func (j *Join) hashJoin(fn func(a, b Item) (bool, error)) error {
	table := make(map[uint64][]Item)
	err := j.right.Snapshot().Do(func(b Item) (bool, error) {
		bv, err := b.Obj.Get(j.rightField)
		if err != nil {
			return false, err
		}
		h := bv.Hash()
		table[h] = append(table[h], b)
		return true, nil
	})
	if err != nil {
		return err
	}
	return j.left.Snapshot().Do(func(a Item) (bool, error) {
		av, err := a.Obj.Get(j.leftField)
		if err != nil {
			return false, err
		}
		for _, b := range table[av.Hash()] {
			bv, err := b.Obj.Get(j.rightField)
			if err != nil {
				return false, err
			}
			if av.Equal(bv) {
				cont, err := fn(a, b)
				if err != nil || !cont {
					return false, err
				}
			}
		}
		return true, nil
	})
}

// ForallValues iterates a set value with optional suchthat and by,
// mirroring set loops (`forall x in s suchthat ... by ...`). With
// fixpoint true, elements inserted during iteration are visited.
func ForallValues(s *core.Set, pred func(core.Value) (bool, error), fixpoint bool, fn func(core.Value) (bool, error)) error {
	var outerErr error
	visit := func(v core.Value) bool {
		if pred != nil {
			ok, err := pred(v)
			if err != nil {
				outerErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		cont, err := fn(v)
		if err != nil {
			outerErr = err
			return false
		}
		return cont
	}
	if fixpoint {
		s.Iter(visit)
	} else {
		s.IterSnapshot(visit)
	}
	return outerErr
}

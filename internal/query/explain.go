package query

import (
	"fmt"
	"strings"

	"ode/internal/core"
)

// Plan describes the access path a forall query will use, computed
// without executing it. It is the EXPLAIN surface of the query layer:
// ode.Explain, the ode-sh `explain` statement, and ode-inspect all
// render it.
type Plan struct {
	Kind     string     // "extent-scan" or "index-scan"
	Class    string     // iterated class
	Subtypes bool       // whole cluster hierarchy (the C* form)
	Field    string     // indexed field, for index scans
	Lo, Hi   core.Value // inclusive index bounds (Null = open)
	Residual bool       // predicate must still be re-checked per item
	Filter   string     // rendered suchthat predicate ("" when none)
	OrderBy  string     // by field ("" when unordered)
	Desc     bool       // descending order
}

// Plan kinds.
const (
	PlanExtentScan = "extent-scan"
	PlanIndexScan  = "index-scan"
)

// String renders the plan in the same notation Query.Plan reports
// after a run, e.g.
//
//	index-scan(student.gpa in [3, +inf]) filter(gpa > 3)
//	extent-scan(person*)
func (p Plan) String() string {
	var b strings.Builder
	if p.Kind == PlanIndexScan {
		fmt.Fprintf(&b, "%s(%s.%s in [%s, %s])", p.Kind, p.Class, p.Field, bound(p.Lo, "-inf"), bound(p.Hi, "+inf"))
		if p.Residual {
			b.WriteString(" + residual")
		}
	} else {
		fmt.Fprintf(&b, "%s(%s%s)", PlanExtentScan, p.Class, starIf(p.Subtypes))
	}
	if p.Filter != "" {
		fmt.Fprintf(&b, " filter(%s)", p.Filter)
	}
	if p.OrderBy != "" {
		fmt.Fprintf(&b, " order-by(%s%s)", p.OrderBy, descIf(p.Desc))
	}
	return b.String()
}

func bound(v core.Value, open string) string {
	if v.IsNull() {
		return open
	}
	return v.String()
}

func descIf(desc bool) string {
	if desc {
		return " desc"
	}
	return ""
}

// Explain computes the access path the query would use, without
// running it: the same index-selection logic as Do, minus execution.
func (q *Query) Explain() Plan {
	p := Plan{
		Kind:     PlanExtentScan,
		Class:    q.class.Name,
		Subtypes: q.subtypes,
		OrderBy:  q.byField,
		Desc:     q.desc,
	}
	if q.pred != nil {
		p.Filter = PredString(q.pred)
	}
	if lo, hi, field, residual := q.indexPath(); field != "" {
		p.Kind = PlanIndexScan
		p.Field = field
		p.Lo, p.Hi = lo, hi
		p.Residual = residual
	}
	return p
}

// PredString renders a predicate tree for plan display. Opaque Go
// closures render as "<fn>".
func PredString(p Pred) string {
	switch v := p.(type) {
	case FieldPred:
		return v.String()
	case AndPred:
		parts := make([]string, len(v))
		for i, sub := range v {
			parts[i] = PredString(sub)
		}
		return "(" + strings.Join(parts, " && ") + ")"
	case OrPred:
		parts := make([]string, len(v))
		for i, sub := range v {
			parts[i] = PredString(sub)
		}
		return "(" + strings.Join(parts, " || ") + ")"
	case NotPred:
		return "!(" + PredString(v.P) + ")"
	case IsClass:
		return "is " + v.Class.Name
	case nil:
		return ""
	default:
		return "<fn>"
	}
}

// JoinPlan describes the physical strategy a join will use and the
// plans of both inputs.
type JoinPlan struct {
	Strategy   JoinStrategy
	Theta      bool // arbitrary join condition (always nested loop)
	Left       Plan
	Right      Plan
	LeftField  string
	RightField string
}

// String renders the join plan, e.g.
//
//	index-nested-loop(emp.deptno = dept.deptno; outer extent-scan(emp))
func (p JoinPlan) String() string {
	if p.Theta {
		return fmt.Sprintf("nested-loop(theta; outer %s, inner %s)", p.Left, p.Right)
	}
	return fmt.Sprintf("%s(%s.%s = %s.%s; outer %s)",
		p.Strategy, p.Left.Class, p.LeftField, p.Right.Class, p.RightField, p.Left)
}

// Explain computes the strategy the join would use, without running
// it.
func (j *Join) Explain() JoinPlan {
	p := JoinPlan{
		Theta:      j.theta != nil,
		Left:       j.left.Explain(),
		Right:      j.right.Explain(),
		LeftField:  j.leftField,
		RightField: j.rightField,
	}
	p.Strategy = j.resolveStrategy()
	return p
}

// resolveStrategy applies the Auto rule: index-nested-loop when the
// right side has a usable index on the join field, hash join
// otherwise; theta joins always run as nested loops.
func (j *Join) resolveStrategy() JoinStrategy {
	if j.theta != nil {
		return NestedLoop
	}
	s := j.strategy
	if s == Auto {
		if j.right.tx.Manager().HasIndex(j.right.class, j.rightField) {
			s = IndexNestedLoop
		} else {
			s = HashJoin
		}
	}
	return s
}

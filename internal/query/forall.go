package query

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ode/internal/core"
	"ode/internal/obs"
	"ode/internal/txn"
)

// Query is a forall loop under construction:
//
//	forall x in C [*] [suchthat pred] [by key] { body }
//
// Build it with Forall and the chained modifiers, then run it with Do,
// Collect, or Count.
type Query struct {
	tx       *txn.Tx
	class    *core.Class
	subtypes bool
	pred     Pred
	byField  string
	byKey    func(Item) (core.Value, error)
	desc     bool
	snapshot bool
	noIndex  bool
	workers  int  // > 1: partition the scan across a worker pool
	internal bool // subquery of a join: excluded from forall/plan counters
	plan     string
}

// met returns the query metric set of the owning engine (never nil).
func (q *Query) met() *obs.QueryMetrics { return &q.tx.Metrics().Query }

// Forall starts a forall loop over the extent of class c within tx.
func Forall(tx *txn.Tx, c *core.Class) *Query {
	return &Query{tx: tx, class: c}
}

// Subtypes extends the iteration to the whole cluster hierarchy: the
// O++ `forall x in person*` form (paper, section 3.1.1).
func (q *Query) Subtypes() *Query {
	q.subtypes = true
	return q
}

// SuchThat adds the filtering clause. Multiple calls conjoin.
func (q *Query) SuchThat(p Pred) *Query {
	if q.pred == nil {
		q.pred = p
	} else {
		q.pred = And(q.pred, p)
	}
	return q
}

// By orders the iteration by a field value, ascending (the O++ `by`
// clause). Ordering implies snapshot semantics.
func (q *Query) By(field string) *Query {
	q.byField = field
	return q
}

// ByKey orders the iteration by a computed key.
func (q *Query) ByKey(fn func(Item) (core.Value, error)) *Query {
	q.byKey = fn
	return q
}

// Desc flips the ordering direction.
func (q *Query) Desc() *Query {
	q.desc = true
	return q
}

// Snapshot disables the paper's visit-inserted (fixpoint) semantics:
// objects created during the iteration are not visited. Iterations
// with a by clause are always snapshot.
func (q *Query) Snapshot() *Query {
	q.snapshot = true
	return q
}

// NoIndex forces a full extent scan even when an index could serve the
// suchthat clause (for ablation benchmarks).
func (q *Query) NoIndex() *Query {
	q.noIndex = true
	return q
}

// Parallel partitions the scan across n worker goroutines (n <= 0 means
// GOMAXPROCS). Parallel implies Snapshot: objects created during the
// loop are not visited, because fixpoint semantics need a serial view
// of the growing write set. Ordered runs (By/ByKey) stay serial too —
// their output order must be deterministic. The body runs concurrently,
// so it must be safe for concurrent invocation; reading through the
// transaction (Deref, field access) is safe, mutating it (Update, PNew,
// Delete) is not. Collect and Count synchronize internally. Iteration
// order across workers is unspecified.
func (q *Query) Parallel(n int) *Query {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	q.workers = n
	q.snapshot = true
	return q
}

// Plan returns a description of the access path chosen by the last run
// ("" before any run).
func (q *Query) Plan() string { return q.plan }

// Do runs the loop. fn returning false stops the iteration early.
//
// Semantics, per the paper: objects pnew'ed into the iterated extents
// while the loop runs are themselves visited (section 3.2, fixpoint
// queries) unless Snapshot or an ordering clause is in effect. Objects
// deleted in the surrounding transaction are never visited.
func (q *Query) Do(fn func(it Item) (bool, error)) error {
	if !q.internal {
		q.met().Foralls.Inc()
	}
	if q.byField != "" || q.byKey != nil {
		return q.runOrdered(fn)
	}
	if q.snapshot {
		if q.workers > 1 {
			return q.runParallel(fn)
		}
		return q.gatherEach(fn)
	}
	return q.runFixpoint(fn)
}

// Collect runs the loop and returns all bindings. With Parallel the
// result order is unspecified.
func (q *Query) Collect() ([]Item, error) {
	var mu sync.Mutex
	var out []Item
	err := q.Do(func(it Item) (bool, error) {
		mu.Lock()
		out = append(out, it)
		mu.Unlock()
		return true, nil
	})
	return out, err
}

// Count runs the loop and counts bindings.
func (q *Query) Count() (int, error) {
	var n atomic.Int64
	err := q.Do(func(Item) (bool, error) {
		n.Add(1)
		return true, nil
	})
	return int(n.Load()), err
}

// classes returns the extents to visit.
func (q *Query) classes() []*core.Class {
	if q.subtypes {
		return q.tx.Schema().Hierarchy(q.class)
	}
	return []*core.Class{q.class}
}

// classMatch reports whether an object of class c binds this loop
// variable.
func (q *Query) classMatch(c *core.Class) bool {
	if q.subtypes {
		return c.IsA(q.class)
	}
	return c == q.class
}

// eval applies the full suchthat predicate.
func (q *Query) eval(it Item) (bool, error) {
	if q.pred == nil {
		return true, nil
	}
	return q.pred.Eval(q.tx, it)
}

// gatherEach streams the matching items once (snapshot semantics),
// choosing an index access path when possible. No item buffering:
// extents of distinct classes are disjoint and index entries are
// unique per object, so no dedup set is needed beyond the dirty map.
func (q *Query) gatherEach(fn func(Item) (bool, error)) error {
	stopped := false
	visit := func(oid core.OID) (bool, error) {
		it, ok, err := q.fetch(oid)
		if err != nil || !ok {
			return err == nil, err
		}
		match, err := q.eval(it)
		if err != nil {
			return false, err
		}
		if !match {
			return true, nil
		}
		q.met().RowsYielded.Inc()
		cont, err := fn(it)
		if !cont {
			stopped = true
		}
		return cont, err
	}

	// Transaction-dirty objects first: they are authoritative over any
	// (possibly stale) index entry or extent membership.
	writeSet := q.tx.WriteSet()
	var dirty map[core.OID]bool
	if len(writeSet) > 0 {
		dirty = make(map[core.OID]bool, len(writeSet))
		for _, oid := range writeSet {
			dirty[oid] = true
			if cont, err := visit(oid); err != nil || !cont {
				return err
			}
		}
	}

	if lo, hi, field, residualOnly := q.indexPath(); field != "" {
		q.plan = fmt.Sprintf("index-scan(%s.%s in [%s, %s])", q.class.Name, field, lo, hi)
		if residualOnly {
			q.plan += " + residual"
		}
		if !q.internal {
			q.met().PlanIndexRange.Inc()
		}
		return q.tx.Manager().IndexScan(q.class, field, lo, hi, func(oid core.OID) (bool, error) {
			if dirty[oid] {
				return true, nil // already handled from the write set
			}
			return visit(oid)
		})
	}

	q.plan = fmt.Sprintf("extent-scan(%s%s)", q.class.Name, starIf(q.subtypes))
	if !q.internal {
		q.met().PlanExtentScan.Inc()
	}
	for _, c := range q.classes() {
		// Extent boundary: a scan over a class hierarchy re-checks the
		// transaction context between extents.
		if err := q.tx.Err(); err != nil {
			return err
		}
		err := q.tx.Manager().ScanCluster(c, func(oid core.OID) (bool, error) {
			if dirty[oid] {
				return true, nil
			}
			return visit(oid)
		})
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// candidateOIDs snapshots the OIDs the loop must visit, choosing the
// same access path (index range vs extent scan) as gatherEach and
// recording the same plan string and plan counters. OIDs in dirty are
// excluded (the serial write-set pass already visited them).
func (q *Query) candidateOIDs(dirty map[core.OID]bool) ([]core.OID, error) {
	keep := func(oids []core.OID) []core.OID {
		if len(dirty) == 0 {
			return oids
		}
		out := oids[:0]
		for _, oid := range oids {
			if !dirty[oid] {
				out = append(out, oid)
			}
		}
		return out
	}
	if lo, hi, field, residualOnly := q.indexPath(); field != "" {
		q.plan = fmt.Sprintf("index-scan(%s.%s in [%s, %s])", q.class.Name, field, lo, hi)
		if residualOnly {
			q.plan += " + residual"
		}
		if !q.internal {
			q.met().PlanIndexRange.Inc()
		}
		oids, err := q.tx.Manager().IndexOIDs(q.class, field, lo, hi)
		if err != nil {
			return nil, err
		}
		return keep(oids), nil
	}
	q.plan = fmt.Sprintf("extent-scan(%s%s)", q.class.Name, starIf(q.subtypes))
	if !q.internal {
		q.met().PlanExtentScan.Inc()
	}
	var all []core.OID
	for _, c := range q.classes() {
		oids, err := q.tx.Manager().ClusterOIDs(c)
		if err != nil {
			return nil, err
		}
		all = append(all, keep(oids)...)
	}
	return all, nil
}

// runParallel is the snapshot loop partitioned across q.workers
// goroutines. The transaction write set is visited first, serially
// (those objects live in tx-local state and are authoritative); the
// committed candidates are then split into chunks claimed from a shared
// counter. A body returning false or an error raises a stop flag that
// every worker polls per object, and the error of the lowest-numbered
// chunk wins, so the reported error does not depend on goroutine
// scheduling.
func (q *Query) runParallel(fn func(Item) (bool, error)) error {
	visit := func(oid core.OID) (bool, error) {
		it, ok, err := q.fetch(oid)
		if err != nil || !ok {
			return err == nil, err
		}
		match, err := q.eval(it)
		if err != nil {
			return false, err
		}
		if !match {
			return true, nil
		}
		q.met().RowsYielded.Inc()
		return fn(it)
	}

	writeSet := q.tx.WriteSet()
	var dirty map[core.OID]bool
	if len(writeSet) > 0 {
		dirty = make(map[core.OID]bool, len(writeSet))
		for _, oid := range writeSet {
			dirty[oid] = true
			cont, err := visit(oid)
			if err != nil || !cont {
				return err
			}
		}
	}

	oids, err := q.candidateOIDs(dirty)
	if err != nil {
		return err
	}
	q.plan += fmt.Sprintf(" parallel(%d)", q.workers)
	if !q.internal {
		q.met().ParallelForalls.Inc()
	}
	if len(oids) == 0 {
		return nil
	}
	workers := q.workers
	if workers > len(oids) {
		workers = len(oids)
	}
	// ~8 chunks per worker balances skew against claim traffic.
	chunk := len(oids) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	nchunks := (len(oids) + chunk - 1) / chunk

	chunkErr := make([]error, nchunks)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					return
				}
				// Chunk boundary: each worker re-checks the transaction
				// context before claiming more work, so a Parallel(n)
				// scan stops within one chunk of cancellation.
				if err := q.tx.Err(); err != nil {
					chunkErr[ci] = err
					stop.Store(true)
					return
				}
				lo, hi := ci*chunk, (ci+1)*chunk
				if hi > len(oids) {
					hi = len(oids)
				}
				for _, oid := range oids[lo:hi] {
					if stop.Load() {
						return
					}
					cont, err := visit(oid)
					if err != nil {
						chunkErr[ci] = err // one worker per chunk: no race
						stop.Store(true)
						return
					}
					if !cont {
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, e := range chunkErr {
		if e != nil {
			return e
		}
	}
	return nil
}

// gather collects the matching items (ordered runs need them all).
func (q *Query) gather() ([]Item, error) {
	var out []Item
	err := q.gatherEach(func(it Item) (bool, error) {
		out = append(out, it)
		return true, nil
	})
	return out, err
}

func starIf(b bool) string {
	if b {
		return "*"
	}
	return ""
}

// fetch loads the tx-visible state of oid and reports whether it binds
// the loop variable (exists, not deleted, class matches). It is the
// per-row cancellation point of every scan shape: an expired or
// canceled transaction context stops the loop with a typed error even
// when the row would have been served from tx-local state without a
// lock wait.
func (q *Query) fetch(oid core.OID) (Item, bool, error) {
	if err := q.tx.Err(); err != nil {
		return Item{}, false, err
	}
	q.met().RowsScanned.Inc()
	if q.tx.IsDeleted(oid) {
		return Item{}, false, nil
	}
	o, err := q.tx.Deref(oid)
	if err != nil {
		// Deleted concurrently between scan and deref under our lock
		// protocol cannot happen (the scan reflects committed state and
		// deletes need X locks); a missing object here is a real error.
		return Item{}, false, err
	}
	if !q.classMatch(o.Class()) {
		return Item{}, false, nil
	}
	return Item{OID: oid, Obj: o}, true, nil
}

// indexPath inspects the suchthat predicate for an indexable conjunct.
// It returns inclusive bounds, the field name ("" when no index path
// applies), and whether the residual check subsumes the bounds.
func (q *Query) indexPath() (lo, hi core.Value, field string, residual bool) {
	if q.noIndex || q.pred == nil {
		return core.Null, core.Null, "", false
	}
	var candidates []FieldPred
	switch p := q.pred.(type) {
	case FieldPred:
		candidates = append(candidates, p)
	case AndPred:
		for _, sub := range p {
			if fp, ok := sub.(FieldPred); ok {
				candidates = append(candidates, fp)
			}
		}
	}
	for _, fp := range candidates {
		l, h, res, ok := fp.indexBounds()
		if !ok {
			continue
		}
		if !q.tx.Manager().HasIndex(q.class, fp.Name) {
			continue
		}
		// An index on a base class covers subclass extents, so the
		// index path is valid for both C and C* loops; for C loops the
		// class filter in fetch() prunes subclass objects.
		return l, h, fp.Name, res
	}
	return core.Null, core.Null, "", false
}

// runOrdered gathers, sorts by the key, and visits.
func (q *Query) runOrdered(fn func(it Item) (bool, error)) error {
	items, err := q.gather()
	if err != nil {
		return err
	}
	key := q.byKey
	if key == nil {
		field := q.byField
		key = func(it Item) (core.Value, error) { return it.Obj.Get(field) }
	}
	type keyed struct {
		it Item
		k  core.Value
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		k, err := key(it)
		if err != nil {
			return err
		}
		ks[i] = keyed{it: it, k: k}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		c := ks[i].k.Compare(ks[j].k)
		if q.desc {
			return c > 0
		}
		return c < 0
	})
	for _, e := range ks {
		cont, err := fn(e.it)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

// runFixpoint visits the snapshot first and then keeps visiting objects
// created into the iterated extents during the loop, until no new
// matching objects appear. This realizes the paper's recursive-query
// semantics for cluster loops.
func (q *Query) runFixpoint(fn func(it Item) (bool, error)) error {
	visited := make(map[core.OID]bool)
	stopped := false
	visit := func(items []Item) error {
		for _, it := range items {
			if visited[it.OID] {
				continue
			}
			visited[it.OID] = true
			cont, err := fn(it)
			if err != nil {
				return err
			}
			if !cont {
				stopped = true
				return nil
			}
		}
		return nil
	}
	err := q.gatherEach(func(it Item) (bool, error) {
		if visited[it.OID] {
			return true, nil
		}
		visited[it.OID] = true
		cont, err := fn(it)
		if !cont {
			stopped = true
		}
		return cont, err
	})
	if err != nil || stopped {
		return err
	}
	for {
		// Newly created objects land in the transaction write set; a
		// cheap delta pass over it suffices.
		var delta []Item
		for _, oid := range q.tx.WriteSet() {
			if visited[oid] {
				continue
			}
			it, ok, err := q.fetch(oid)
			if err != nil {
				return err
			}
			if !ok {
				visited[oid] = true // deleted or class mismatch: never visit
				continue
			}
			match, err := q.eval(it)
			if err != nil {
				return err
			}
			if match {
				q.met().RowsYielded.Inc()
				delta = append(delta, it)
			} else {
				visited[oid] = true
			}
		}
		if len(delta) == 0 {
			return nil
		}
		q.met().FixpointRounds.Inc()
		if err := visit(delta); err != nil || stopped {
			return err
		}
	}
}

// ErrStopped can be returned by callbacks that want to distinguish
// early termination from errors (convenience; Do treats a false return
// the same way).
var ErrStopped = errors.New("query: stopped")

package query

import (
	"errors"
	"sort"
	"sync/atomic"
	"testing"

	"ode/internal/core"
)

func oidSet(items []Item) []core.OID {
	out := make([]core.OID, len(items))
	for i, it := range items {
		out[i] = it.OID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalOIDs(a, b []core.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParallelMatchesSerial(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()

	for _, workers := range []int{2, 4, 8} {
		serial, err := Forall(tx, u.person).Subtypes().
			SuchThat(Field("income").Ge(core.Int(300))).
			Snapshot().Collect()
		if err != nil {
			t.Fatal(err)
		}
		par, err := Forall(tx, u.person).Subtypes().
			SuchThat(Field("income").Ge(core.Int(300))).
			Parallel(workers).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if !equalOIDs(oidSet(serial), oidSet(par)) {
			t.Fatalf("workers=%d: parallel bindings differ from serial (%d vs %d items)",
				workers, len(par), len(serial))
		}
	}
}

func TestParallelCount(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()

	want, err := Forall(tx, u.person).Subtypes().Snapshot().Count()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Forall(tx, u.person).Subtypes().Parallel(4).Count()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parallel count = %d, serial = %d", got, want)
	}
}

func TestParallelPlanAndCounter(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()

	before := tx.Metrics().Query.ParallelForalls.Load()
	q := Forall(tx, u.person).Parallel(4)
	if _, err := q.Count(); err != nil {
		t.Fatal(err)
	}
	if got := q.Plan(); got != "extent-scan(person) parallel(4)" {
		t.Fatalf("plan = %q", got)
	}
	if tx.Metrics().Query.ParallelForalls.Load() != before+1 {
		t.Fatal("parallel run did not bump query.parallel_foralls")
	}
	// Plan counters stay consistent: the parallel run still counts as
	// exactly one extent scan.
	fs := tx.Metrics().Query.Foralls.Load()
	es := tx.Metrics().Query.PlanExtentScan.Load()
	ir := tx.Metrics().Query.PlanIndexRange.Load()
	if es+ir != fs {
		t.Fatalf("plan counters inconsistent: extent %d + index %d != foralls %d", es, ir, fs)
	}
}

func TestParallelEarlyStop(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()

	var visited atomic.Int64
	err := Forall(tx, u.person).Subtypes().Parallel(4).Do(func(Item) (bool, error) {
		visited.Add(1)
		return false, nil // stop after the first binding
	})
	if err != nil {
		t.Fatalf("early stop returned %v", err)
	}
	// Early stop is advisory across workers: in-flight objects may
	// still be delivered, but the stop flag bounds the tail well below
	// the full extent.
	if visited.Load() == 0 {
		t.Fatal("body never ran")
	}
}

func TestParallelErrorDeterministic(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()

	boom := errors.New("boom")
	var runs []error
	for i := 0; i < 5; i++ {
		err := Forall(tx, u.person).Subtypes().Parallel(4).Do(func(it Item) (bool, error) {
			return false, boom
		})
		runs = append(runs, err)
	}
	for _, err := range runs {
		if !errors.Is(err, boom) {
			t.Fatalf("parallel error = %v, want boom", err)
		}
	}
}

func TestParallelWithWriteSet(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()

	// A transaction-local insert must be visited exactly once even
	// though it is absent from the committed extent snapshot.
	o := core.NewObject(u.person)
	o.MustSet("name", core.Str("zelda"))
	o.MustSet("income", core.Int(5000))
	oid, err := tx.PNew(u.person, o)
	if err != nil {
		t.Fatal(err)
	}
	items, err := Forall(tx, u.person).Subtypes().Parallel(4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, it := range items {
		if it.OID == oid {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("tx-created object visited %d times, want 1", seen)
	}
}

func TestParallelJoin(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()

	serial, err := Forall(tx, u.student).
		JoinWith(Forall(tx, u.faculty)).
		OnEq("income", "income").Count()
	if err != nil {
		t.Fatal(err)
	}
	par, err := Forall(tx, u.student).
		JoinWith(Forall(tx, u.faculty)).
		OnEq("income", "income").Parallel(4).Count()
	if err != nil {
		t.Fatal(err)
	}
	if par != serial {
		t.Fatalf("parallel join count = %d, serial = %d", par, serial)
	}
}

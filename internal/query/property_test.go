package query

import (
	"fmt"
	"math/rand"
	"testing"

	"ode/internal/core"
)

// TestIndexedAndScanAgree is the optimizer's correctness property: for
// random data and random range predicates, the indexed access path
// must return exactly the extent-scan result.
func TestIndexedAndScanAgree(t *testing.T) {
	u := newUniversity(t)
	r := rand.New(rand.NewSource(21))
	// Load 400 persons with random incomes (duplicates included).
	tx0 := u.engine.Begin()
	for i := 0; i < 400; i++ {
		o := core.NewObject(u.person)
		o.MustSet("name", core.Str(fmt.Sprintf("p%03d", i)))
		o.MustSet("income", core.Int(int64(r.Intn(100))))
		if _, err := tx0.PNew(u.person, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx0.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := u.engine.Manager().CreateIndex(u.person, "income"); err != nil {
		t.Fatal(err)
	}

	tx := u.engine.Begin()
	defer tx.Abort()
	ops := []func(FieldBuilder, core.Value) FieldPred{
		FieldBuilder.Eq, FieldBuilder.Ne, FieldBuilder.Lt,
		FieldBuilder.Le, FieldBuilder.Gt, FieldBuilder.Ge,
	}
	for trial := 0; trial < 60; trial++ {
		pred := ops[r.Intn(len(ops))](Field("income"), core.Int(int64(r.Intn(110)-5)))
		collect := func(noIndex bool) map[core.OID]bool {
			q := Forall(tx, u.person).SuchThat(pred)
			if noIndex {
				q = q.NoIndex()
			}
			out := map[core.OID]bool{}
			if err := q.Do(func(it Item) (bool, error) {
				out[it.OID] = true
				return true, nil
			}); err != nil {
				t.Fatal(err)
			}
			return out
		}
		indexed := collect(false)
		scanned := collect(true)
		if len(indexed) != len(scanned) {
			t.Fatalf("trial %d (%s): indexed %d vs scanned %d", trial, pred, len(indexed), len(scanned))
		}
		for oid := range scanned {
			if !indexed[oid] {
				t.Fatalf("trial %d (%s): indexed path missed @%d", trial, pred, oid)
			}
		}
	}
}

// TestByOrderingMatchesSort verifies the by clause against an explicit
// sort of the collected values for random keys.
func TestByOrderingMatchesSort(t *testing.T) {
	u := newUniversity(t)
	r := rand.New(rand.NewSource(33))
	tx0 := u.engine.Begin()
	for i := 0; i < 200; i++ {
		o := core.NewObject(u.person)
		o.MustSet("name", core.Str(fmt.Sprintf("n%02d", r.Intn(50))))
		o.MustSet("income", core.Int(int64(r.Intn(40))))
		tx0.PNew(u.person, o)
	}
	tx0.Commit()

	tx := u.engine.Begin()
	defer tx.Abort()
	for _, desc := range []bool{false, true} {
		q := Forall(tx, u.person).By("income")
		if desc {
			q = q.Desc()
		}
		var keys []int64
		if err := q.Do(func(it Item) (bool, error) {
			keys = append(keys, it.Obj.MustGet("income").Int())
			return true, nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(keys) != 200 {
			t.Fatalf("visited %d", len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if !desc && keys[i-1] > keys[i] {
				t.Fatalf("asc order violated at %d", i)
			}
			if desc && keys[i-1] < keys[i] {
				t.Fatalf("desc order violated at %d", i)
			}
		}
	}
}

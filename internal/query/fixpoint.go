package query

import (
	"fmt"

	"ode/internal/core"
)

// Worklist is the generic fixpoint iterator underlying recursive
// queries (paper, section 3.2): it visits every element exactly once,
// including elements added during the iteration, until the set stops
// growing — the least-fixpoint computation of Aho & Ullman framed as a
// loop.
type Worklist struct {
	set *core.Set
}

// NewWorklist seeds a worklist.
func NewWorklist(seeds ...core.Value) *Worklist {
	return &Worklist{set: core.NewSet(seeds...)}
}

// Add inserts an element; it reports whether the element is new.
func (w *Worklist) Add(v core.Value) bool { return w.set.Insert(v) }

// Len returns the number of accumulated elements.
func (w *Worklist) Len() int { return w.set.Len() }

// Elems returns the accumulated elements (insertion order).
func (w *Worklist) Elems() []core.Value { return w.set.Elems() }

// Contains reports membership.
func (w *Worklist) Contains(v core.Value) bool { return w.set.Contains(v) }

// Run visits every element (including those added by fn through the add
// callback) exactly once. fn may stop early by returning ErrStopped.
func (w *Worklist) Run(fn func(v core.Value, add func(core.Value) bool) error) error {
	var outer error
	w.set.Iter(func(v core.Value) bool {
		if err := fn(v, w.Add); err != nil {
			if err != ErrStopped {
				outer = err
			}
			return false
		}
		return true
	})
	return outer
}

// SuccFunc produces the successors of a value in some reachability
// relation (e.g. the subparts of a part).
type SuccFunc func(v core.Value) ([]core.Value, error)

// MaxFixpointRounds bounds the round-based strategies against cyclic
// blowups in buggy successor functions.
const MaxFixpointRounds = 1 << 20

// TransitiveClosure computes the set of values reachable from the seeds
// through succ, using the worklist strategy (each element expanded
// exactly once — the O++ visit-inserted loop). Seeds are included in
// the result.
func TransitiveClosure(seeds []core.Value, succ SuccFunc) (*core.Set, error) {
	w := NewWorklist(seeds...)
	err := w.Run(func(v core.Value, add func(core.Value) bool) error {
		next, err := succ(v)
		if err != nil {
			return err
		}
		for _, n := range next {
			add(n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return w.set, nil
}

// NaiveTransitiveClosure is the textbook naive fixpoint baseline: every
// round re-expands the whole accumulated set until no new elements
// appear. It produces the same result as TransitiveClosure with
// O(depth) times more succ calls; the benchmark suite contrasts them.
func NaiveTransitiveClosure(seeds []core.Value, succ SuccFunc) (*core.Set, error) {
	acc := core.NewSet(seeds...)
	for round := 0; ; round++ {
		if round > MaxFixpointRounds {
			return nil, fmt.Errorf("query: naive fixpoint exceeded %d rounds", MaxFixpointRounds)
		}
		grew := false
		for _, v := range acc.Elems() {
			next, err := succ(v)
			if err != nil {
				return nil, err
			}
			for _, n := range next {
				if acc.Insert(n) {
					grew = true
				}
			}
		}
		if !grew {
			return acc, nil
		}
	}
}

// SemiNaiveTransitiveClosure expands only the delta of each round — the
// standard optimization of naive evaluation from the deductive-database
// literature the paper cites ([2, 9]).
func SemiNaiveTransitiveClosure(seeds []core.Value, succ SuccFunc) (*core.Set, error) {
	acc := core.NewSet(seeds...)
	delta := append([]core.Value(nil), acc.Elems()...)
	for round := 0; len(delta) > 0; round++ {
		if round > MaxFixpointRounds {
			return nil, fmt.Errorf("query: semi-naive fixpoint exceeded %d rounds", MaxFixpointRounds)
		}
		var next []core.Value
		for _, v := range delta {
			succs, err := succ(v)
			if err != nil {
				return nil, err
			}
			for _, n := range succs {
				if acc.Insert(n) {
					next = append(next, n)
				}
			}
		}
		delta = next
	}
	return acc, nil
}

// ReachableOIDs is TransitiveClosure specialized to object references:
// it expands each object once, following the references produced by
// refs (e.g. the elements of a set-valued member).
func ReachableOIDs(tx interface {
	Deref(core.OID) (*core.Object, error)
}, seeds []core.OID, refs func(o *core.Object) ([]core.OID, error)) (map[core.OID]bool, error) {
	seedVals := make([]core.Value, len(seeds))
	for i, s := range seeds {
		seedVals[i] = core.Ref(s)
	}
	set, err := TransitiveClosure(seedVals, func(v core.Value) ([]core.Value, error) {
		oid, ok := v.AnyOID()
		if !ok || oid == core.NilOID {
			return nil, nil
		}
		o, err := tx.Deref(oid)
		if err != nil {
			return nil, err
		}
		next, err := refs(o)
		if err != nil {
			return nil, err
		}
		out := make([]core.Value, 0, len(next))
		for _, n := range next {
			if n != core.NilOID {
				out = append(out, core.Ref(n))
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[core.OID]bool, set.Len())
	for _, v := range set.Elems() {
		if oid, ok := v.AnyOID(); ok {
			out[oid] = true
		}
	}
	return out, nil
}

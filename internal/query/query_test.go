package query

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"ode/internal/core"
	"ode/internal/object"
	"ode/internal/storage"
	"ode/internal/txn"
	"ode/internal/wal"
)

// university builds the paper's person/student/faculty schema with
// extents and an engine (section 3.1's running example).
type university struct {
	engine  *txn.Engine
	person  *core.Class
	student *core.Class
	faculty *core.Class
}

func newUniversity(t testing.TB) *university {
	t.Helper()
	schema := core.NewSchema()
	person := core.NewClass("person").
		Field("name", core.TString).
		Field("income", core.TInt).
		Field("age", core.TInt).
		Register(schema)
	student := core.NewClass("student", person).
		Field("school", core.TString).
		Register(schema)
	faculty := core.NewClass("faculty", person).
		Field("dept", core.TString).
		Register(schema)

	dir := t.TempDir()
	fs, err := storage.CreateFile(filepath.Join(dir, "u.odb"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	pool := storage.NewPool(fs, 256, nil, nil)
	mgr, err := object.Create(schema, fs, pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*core.Class{person, student, faculty} {
		if err := mgr.CreateCluster(c); err != nil {
			t.Fatal(err)
		}
	}
	log, err := wal.Open(filepath.Join(dir, "u.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	return &university{
		engine:  txn.NewEngine(mgr, log),
		person:  person,
		student: student,
		faculty: faculty,
	}
}

// seed populates: 10 persons (income 0..900), 5 students, 3 faculty.
func (u *university) seed(t testing.TB) map[string]core.OID {
	t.Helper()
	oids := make(map[string]core.OID)
	tx := u.engine.Begin()
	mk := func(c *core.Class, name string, income int64, extra map[string]core.Value) {
		o := core.NewObject(c)
		o.MustSet("name", core.Str(name))
		o.MustSet("income", core.Int(income))
		for k, v := range extra {
			o.MustSet(k, v)
		}
		oid, err := tx.PNew(c, o)
		if err != nil {
			t.Fatal(err)
		}
		oids[name] = oid
	}
	for i := 0; i < 10; i++ {
		mk(u.person, fmt.Sprintf("p%d", i), int64(i*100), nil)
	}
	for i := 0; i < 5; i++ {
		mk(u.student, fmt.Sprintf("s%d", i), int64(i*10), map[string]core.Value{"school": core.Str("eng")})
	}
	for i := 0; i < 3; i++ {
		mk(u.faculty, fmt.Sprintf("f%d", i), int64(5000+i), map[string]core.Value{"dept": core.Str("cs")})
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return oids
}

func TestForallExactClass(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	n, err := Forall(tx, u.person).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("forall person visited %d, want 10 (not subclasses)", n)
	}
}

func TestForallHierarchy(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	q := Forall(tx, u.person).Subtypes()
	n, err := q.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 18 {
		t.Errorf("forall person* visited %d, want 18", n)
	}
	if !strings.Contains(q.Plan(), "extent-scan(person*)") {
		t.Errorf("plan = %q", q.Plan())
	}
}

// TestPaperIncomeQuery reproduces the section 3.1 example: average
// income of persons, students, and faculty in one pass over person*
// using `is` tests.
func TestPaperIncomeQuery(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	var incomeP, incomeS, incomeF int64
	var nP, nS, nF int
	err := Forall(tx, u.person).Subtypes().Do(func(it Item) (bool, error) {
		inc := it.Obj.MustGet("income").Int()
		incomeP += inc
		nP++
		switch {
		case it.Obj.Class().IsA(u.student):
			incomeS += inc
			nS++
		case it.Obj.Class().IsA(u.faculty):
			incomeF += inc
			nF++
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nP != 18 || nS != 5 || nF != 3 {
		t.Fatalf("counts: %d %d %d", nP, nS, nF)
	}
	if incomeS != 0+10+20+30+40 {
		t.Errorf("student income sum = %d", incomeS)
	}
	if incomeF != 5000+5001+5002 {
		t.Errorf("faculty income sum = %d", incomeF)
	}
}

func TestSuchThatFilter(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	n, err := Forall(tx, u.person).
		SuchThat(Field("income").Ge(core.Int(500))).
		Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 { // incomes 500..900
		t.Errorf("suchthat matched %d, want 5", n)
	}
	// Conjunction.
	n, _ = Forall(tx, u.person).
		SuchThat(And(Field("income").Ge(core.Int(500)), Field("income").Lt(core.Int(700)))).
		Count()
	if n != 2 {
		t.Errorf("conjunction matched %d, want 2", n)
	}
	// Or / Not / Fn.
	n, _ = Forall(tx, u.person).
		SuchThat(Or(Field("income").Eq(core.Int(0)), Field("income").Eq(core.Int(900)))).
		Count()
	if n != 2 {
		t.Errorf("disjunction matched %d, want 2", n)
	}
	n, _ = Forall(tx, u.person).SuchThat(Not(Field("income").Lt(core.Int(500)))).Count()
	if n != 5 {
		t.Errorf("negation matched %d, want 5", n)
	}
	n, _ = Forall(tx, u.person).SuchThat(Fn(func(_ core.Store, it Item) (bool, error) {
		return strings.HasSuffix(it.Obj.MustGet("name").Str(), "3"), nil
	})).Count()
	if n != 1 {
		t.Errorf("fn predicate matched %d, want 1", n)
	}
}

func TestIsPredicate(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	n, err := Forall(tx, u.person).Subtypes().SuchThat(Is(u.student)).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("is-student matched %d, want 5", n)
	}
}

func TestByOrdering(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	var names []string
	err := Forall(tx, u.person).By("income").Desc().Do(func(it Item) (bool, error) {
		names = append(names, it.Obj.MustGet("name").Str())
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "p9" || names[9] != "p0" {
		t.Errorf("desc order wrong: %v", names)
	}
	// Ascending by name.
	names = nil
	Forall(tx, u.person).By("name").Do(func(it Item) (bool, error) {
		names = append(names, it.Obj.MustGet("name").Str())
		return true, nil
	})
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("asc order wrong: %v", names)
		}
	}
	// ByKey with computed key.
	var first Item
	err = Forall(tx, u.person).ByKey(func(it Item) (core.Value, error) {
		return core.Int(-it.Obj.MustGet("income").Int()), nil
	}).Do(func(it Item) (bool, error) {
		first = it
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Obj.MustGet("name").Str() != "p9" {
		t.Errorf("computed key order wrong: %s", first.Obj.MustGet("name").Str())
	}
}

func TestIndexedSuchThatUsesIndex(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	if err := u.engine.Manager().CreateIndex(u.person, "income"); err != nil {
		t.Fatal(err)
	}
	tx := u.engine.Begin()
	defer tx.Abort()
	q := Forall(tx, u.person).SuchThat(Field("income").Ge(core.Int(500)))
	n, err := q.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("indexed suchthat matched %d, want 5", n)
	}
	if !strings.Contains(q.Plan(), "index-scan") {
		t.Errorf("plan = %q, want index scan", q.Plan())
	}
	// Index covers the hierarchy: students with income >= 30.
	q2 := Forall(tx, u.person).Subtypes().SuchThat(Field("income").Ge(core.Int(30)))
	n, err = q2.Count()
	if err != nil {
		t.Fatal(err)
	}
	// persons 100..900 (9) + students 30,40 (2) + faculty (3) = 14.
	if n != 14 {
		t.Errorf("hierarchy index scan matched %d, want 14", n)
	}
	// NoIndex ablation gives identical results with a scan plan.
	q3 := Forall(tx, u.person).NoIndex().SuchThat(Field("income").Ge(core.Int(500)))
	n, _ = q3.Count()
	if n != 5 {
		t.Errorf("NoIndex matched %d, want 5", n)
	}
	if !strings.Contains(q3.Plan(), "extent-scan") {
		t.Errorf("plan = %q, want extent scan", q3.Plan())
	}
}

func TestIndexScanSeesTransactionWrites(t *testing.T) {
	u := newUniversity(t)
	oids := u.seed(t)
	if err := u.engine.Manager().CreateIndex(u.person, "income"); err != nil {
		t.Fatal(err)
	}
	tx := u.engine.Begin()
	defer tx.Abort()
	// Move p0 (income 0) into the range and p9 (900) out of it, and
	// create a brand-new matching person — all uncommitted.
	p0, _ := tx.Deref(oids["p0"])
	p0.MustSet("income", core.Int(600))
	tx.Update(oids["p0"], p0)
	p9, _ := tx.Deref(oids["p9"])
	p9.MustSet("income", core.Int(1))
	tx.Update(oids["p9"], p9)
	fresh := core.NewObject(u.person)
	fresh.MustSet("name", core.Str("new"))
	fresh.MustSet("income", core.Int(550))
	tx.PNew(u.person, fresh)
	// Delete p8 (800).
	tx.PDelete(oids["p8"])

	q := Forall(tx, u.person).SuchThat(Field("income").Ge(core.Int(500)))
	items, err := q.Collect()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, it := range items {
		got[it.Obj.MustGet("name").Str()] = true
	}
	// Expected: p5, p6, p7 (committed, still in range), p0 (moved in),
	// new (created); p8 deleted, p9 moved out.
	want := []string{"p5", "p6", "p7", "p0", "new"}
	if len(got) != len(want) {
		t.Fatalf("matched %v, want %v", got, want)
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("missing %s", n)
		}
	}
}

func TestFixpointClusterIteration(t *testing.T) {
	// The paper's recursive-query semantics: pnew during a forall loop
	// adds objects that the same loop then visits.
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	visited := 0
	spawned := 0
	err := Forall(tx, u.person).Do(func(it Item) (bool, error) {
		visited++
		if spawned < 4 {
			spawned++
			o := core.NewObject(u.person)
			o.MustSet("name", core.Str(fmt.Sprintf("gen%d", spawned)))
			if _, err := tx.PNew(u.person, o); err != nil {
				return false, err
			}
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 14 { // 10 seeded + 4 spawned
		t.Errorf("visited %d, want 14", visited)
	}
	// Snapshot mode ignores the insertions.
	visited = 0
	err = Forall(tx, u.person).Snapshot().Do(func(it Item) (bool, error) {
		visited++
		o := core.NewObject(u.person)
		o.MustSet("name", core.Str(fmt.Sprintf("snap%d", visited)))
		_, err := tx.PNew(u.person, o)
		return true, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 14 {
		t.Errorf("snapshot visited %d, want 14", visited)
	}
}

func TestJoinStrategiesAgree(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	// Join students to faculty on equal income mod: contrive matches by
	// adding a faculty with income 10 (matching s1).
	tx0 := u.engine.Begin()
	f := core.NewObject(u.faculty)
	f.MustSet("name", core.Str("poor-prof"))
	f.MustSet("income", core.Int(10))
	f.MustSet("dept", core.Str("phil"))
	tx0.PNew(u.faculty, f)
	tx0.Commit()

	tx := u.engine.Begin()
	defer tx.Abort()
	count := func(s JoinStrategy) int {
		j := Forall(tx, u.student).JoinWith(Forall(tx, u.faculty)).
			OnEq("income", "income").Strategy(s)
		n, err := j.Count()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	nl := count(NestedLoop)
	hj := count(HashJoin)
	if nl != 1 || hj != 1 {
		t.Fatalf("join counts: nested-loop=%d hash=%d, want 1", nl, hj)
	}
	// With an index on faculty.income, index-NL must agree, and Auto
	// must pick it.
	if err := u.engine.Manager().CreateIndex(u.faculty, "income"); err != nil {
		t.Fatal(err)
	}
	inl := count(IndexNestedLoop)
	if inl != 1 {
		t.Fatalf("index-NL join = %d", inl)
	}
	j := Forall(tx, u.student).JoinWith(Forall(tx, u.faculty)).OnEq("income", "income")
	if _, err := j.Count(); err != nil {
		t.Fatal(err)
	}
	if j.Plan() != "index-nested-loop" {
		t.Errorf("auto plan = %q", j.Plan())
	}
}

func TestThetaJoin(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	// Pairs (student, faculty) where faculty earns more than 100x the
	// student.
	j := Forall(tx, u.student).JoinWith(Forall(tx, u.faculty)).
		OnTheta(func(a, b Item) (bool, error) {
			return b.Obj.MustGet("income").Int() > 100*a.Obj.MustGet("income").Int(), nil
		})
	n, err := j.Count()
	if err != nil {
		t.Fatal(err)
	}
	// student incomes 0,10,20,30,40; faculty 5000,5001,5002.
	// 100x: 0->all (3), 10->all(3), 20->all(3), 30->all(3), 40->all(3) = 15;
	// for income 50*100=5000 not > 5000... all students < 50 so 15.
	if n != 15 {
		t.Errorf("theta join = %d, want 15", n)
	}
}

func TestJoinWithFilters(t *testing.T) {
	u := newUniversity(t)
	u.seed(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	// Students named s1 joined to faculty with the same school/dept
	// combination is empty; use income join with a filter on the left.
	tx2 := u.engine.Begin()
	f := core.NewObject(u.faculty)
	f.MustSet("name", core.Str("x"))
	f.MustSet("income", core.Int(10))
	tx2.PNew(u.faculty, f)
	tx2.Commit()

	j := Forall(tx, u.student).SuchThat(Field("name").Eq(core.Str("s1"))).
		JoinWith(Forall(tx, u.faculty)).
		OnEq("income", "income")
	n, err := j.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("filtered join = %d, want 1", n)
	}
}

func TestWorklistTransitiveClosure(t *testing.T) {
	// Successors on a small DAG: 1 -> {2,3}, 2 -> {4}, 3 -> {4}, 4 -> {}.
	succ := func(v core.Value) ([]core.Value, error) {
		switch v.Int() {
		case 1:
			return []core.Value{core.Int(2), core.Int(3)}, nil
		case 2, 3:
			return []core.Value{core.Int(4)}, nil
		}
		return nil, nil
	}
	for name, f := range map[string]func([]core.Value, SuccFunc) (*core.Set, error){
		"worklist":  TransitiveClosure,
		"naive":     NaiveTransitiveClosure,
		"seminaive": SemiNaiveTransitiveClosure,
	} {
		got, err := f([]core.Value{core.Int(1)}, succ)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != 4 {
			t.Errorf("%s: closure size %d, want 4", name, got.Len())
		}
		for i := int64(1); i <= 4; i++ {
			if !got.Contains(core.Int(i)) {
				t.Errorf("%s: missing %d", name, i)
			}
		}
	}
}

func TestTransitiveClosureOnCycle(t *testing.T) {
	// 1 -> 2 -> 3 -> 1: all strategies must terminate with {1,2,3}.
	succ := func(v core.Value) ([]core.Value, error) {
		return []core.Value{core.Int(v.Int()%3 + 1)}, nil
	}
	for name, f := range map[string]func([]core.Value, SuccFunc) (*core.Set, error){
		"worklist":  TransitiveClosure,
		"naive":     NaiveTransitiveClosure,
		"seminaive": SemiNaiveTransitiveClosure,
	} {
		got, err := f([]core.Value{core.Int(1)}, succ)
		if err != nil || got.Len() != 3 {
			t.Errorf("%s on cycle: len=%v err=%v", name, got.Len(), err)
		}
	}
}

func TestReachableOIDs(t *testing.T) {
	u := newUniversity(t)
	// Build a parts-ish graph with person objects pointing via an
	// income-encoded... simpler: use a dedicated class with a set of refs.
	schema := u.engine.Manager().Schema()
	part := core.NewClass("part").
		Field("label", core.TString).
		Field("subparts", core.SetOfType(core.RefTo("part"))).
		Register(schema)
	if err := u.engine.Manager().CreateCluster(part); err != nil {
		t.Fatal(err)
	}
	tx := u.engine.Begin()
	mk := func(label string) core.OID {
		o := core.NewObject(part)
		o.MustSet("label", core.Str(label))
		oid, err := tx.PNew(part, o)
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	link := func(parent, child core.OID) {
		o, _ := tx.Deref(parent)
		o.MustGet("subparts").Set().Insert(core.Ref(child))
		if err := tx.Update(parent, o); err != nil {
			t.Fatal(err)
		}
	}
	root := mk("root")
	a, b, c, d := mk("a"), mk("b"), mk("c"), mk("d")
	link(root, a)
	link(root, b)
	link(a, c)
	link(b, c)
	link(c, d)
	_ = tx.Commit()

	tx2 := u.engine.Begin()
	defer tx2.Abort()
	reach, err := ReachableOIDs(tx2, []core.OID{root}, func(o *core.Object) ([]core.OID, error) {
		var out []core.OID
		for _, v := range o.MustGet("subparts").Set().Elems() {
			oid, _ := v.AnyOID()
			out = append(out, oid)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reach) != 5 {
		t.Errorf("reachable = %d oids, want 5", len(reach))
	}
	for _, oid := range []core.OID{root, a, b, c, d} {
		if !reach[oid] {
			t.Errorf("missing @%d", oid)
		}
	}
}

func TestForallValues(t *testing.T) {
	s := core.NewSet(core.Int(1), core.Int(2), core.Int(3))
	var got []int64
	err := ForallValues(s,
		func(v core.Value) (bool, error) { return v.Int()%2 == 1, nil },
		false,
		func(v core.Value) (bool, error) {
			got = append(got, v.Int())
			return true, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("filtered set iteration = %v", got)
	}
	// Fixpoint mode visits inserted elements.
	var n int
	ForallValues(s, nil, true, func(v core.Value) (bool, error) {
		n++
		if v.Int() < 6 {
			s.Insert(core.Int(v.Int() + 3))
		}
		return true, nil
	})
	if n != 8 { // 1,2,3 then 4,5,6 then 7,8
		t.Errorf("fixpoint visited %d, want 8", n)
	}
}

func TestCollectAndEmptyExtent(t *testing.T) {
	u := newUniversity(t)
	tx := u.engine.Begin()
	defer tx.Abort()
	items, err := Forall(tx, u.person).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Errorf("empty extent returned %d items", len(items))
	}
}

package storage

import (
	"errors"
	"fmt"
)

// RecordFile is a heap file: an unordered collection of variable-length
// records spread over a chain of heap pages. The page chain (via the
// heap Next link) makes the file enumerable from its head page, which
// the caller persists (in the boot record).
//
// RecordFile keeps an in-memory list of pages believed to have free
// space; it is an optimization only and is rebuilt lazily.
type RecordFile struct {
	pool *Pool
	head PageID
	// avail is a stack of pages to try for inserts.
	avail []PageID
}

// NewRecordFile opens a record file whose first page is head
// (InvalidPage for an empty file).
func NewRecordFile(pool *Pool, head PageID) *RecordFile {
	rf := &RecordFile{pool: pool, head: head}
	if head != InvalidPage {
		rf.avail = append(rf.avail, head)
	}
	return rf
}

// Head returns the current first page of the chain; callers persist it.
func (rf *RecordFile) Head() PageID { return rf.head }

// Insert stores rec and returns its address.
func (rf *RecordFile) Insert(rec []byte) (RID, error) {
	if len(rec) > MaxRecordSize {
		return NilRID, fmt.Errorf("storage: record of %d bytes exceeds page capacity", len(rec))
	}
	// Try remembered pages with space.
	for len(rf.avail) > 0 {
		id := rf.avail[len(rf.avail)-1]
		p, err := rf.pool.Fetch(id)
		if err != nil {
			return NilRID, err
		}
		h := AsHeap(p)
		slot, err := h.Insert(rec)
		if err == nil {
			rf.pool.Unpin(id, true)
			return RID{Page: id, Slot: slot}, nil
		}
		rf.pool.Unpin(id, false)
		if !errors.Is(err, ErrPageFull) {
			return NilRID, err
		}
		rf.avail = rf.avail[:len(rf.avail)-1]
	}
	// Allocate a fresh page and link it at the head of the chain.
	p, err := rf.pool.NewPage()
	if err != nil {
		return NilRID, err
	}
	id := p.ID()
	h := AsHeap(p)
	h.SetNext(rf.head)
	slot, err := h.Insert(rec)
	rf.pool.Unpin(id, true)
	if err != nil {
		return NilRID, err
	}
	rf.head = id
	rf.avail = append(rf.avail, id)
	return RID{Page: id, Slot: slot}, nil
}

// Get returns a copy of the record at rid.
func (rf *RecordFile) Get(rid RID) ([]byte, error) {
	p, err := rf.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer rf.pool.Unpin(rid.Page, false)
	rec, err := AsHeap(p).Get(rid.Slot)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Update replaces the record at rid. If it no longer fits in its page
// the record is relocated and the new address returned; callers must
// treat the returned RID as authoritative.
func (rf *RecordFile) Update(rid RID, rec []byte) (RID, error) {
	p, err := rf.pool.Fetch(rid.Page)
	if err != nil {
		return NilRID, err
	}
	h := AsHeap(p)
	err = h.Update(rid.Slot, rec)
	if err == nil {
		rf.pool.Unpin(rid.Page, true)
		return rid, nil
	}
	rf.pool.Unpin(rid.Page, false)
	if !errors.Is(err, ErrPageFull) {
		return NilRID, err
	}
	// Relocate: delete then insert elsewhere.
	if err := rf.Delete(rid); err != nil {
		return NilRID, err
	}
	return rf.Insert(rec)
}

// Delete removes the record at rid and remembers the page as having
// space.
func (rf *RecordFile) Delete(rid RID) error {
	p, err := rf.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = AsHeap(p).Delete(rid.Slot)
	rf.pool.Unpin(rid.Page, err == nil)
	if err != nil {
		return err
	}
	rf.noteSpace(rid.Page)
	return nil
}

func (rf *RecordFile) noteSpace(id PageID) {
	for _, a := range rf.avail {
		if a == id {
			return
		}
	}
	rf.avail = append(rf.avail, id)
}

// Iterate visits every live record in the file. The rec slice passed to
// fn aliases the page; fn must copy it to retain it. Iteration stops
// early when fn returns false or an error.
func (rf *RecordFile) Iterate(fn func(rid RID, rec []byte) (bool, error)) error {
	for id := rf.head; id != InvalidPage; {
		p, err := rf.pool.Fetch(id)
		if err != nil {
			return err
		}
		h := AsHeap(p)
		next := h.Next()
		for s := 0; s < h.NumSlots(); s++ {
			rec, err := h.Get(uint16(s))
			if errors.Is(err, ErrNoRecord) {
				continue
			}
			if err != nil {
				rf.pool.Unpin(id, false)
				return err
			}
			cont, err := fn(RID{Page: id, Slot: uint16(s)}, rec)
			if err != nil || !cont {
				rf.pool.Unpin(id, false)
				return err
			}
		}
		rf.pool.Unpin(id, false)
		id = next
	}
	return nil
}

// Exclude removes id from the insert-candidate list. Compaction calls
// it for every page it is about to drain, so relocated records cannot
// land back on a page that is being emptied.
func (rf *RecordFile) Exclude(id PageID) { rf.dropAvail(id) }

func (rf *RecordFile) dropAvail(id PageID) {
	for i, a := range rf.avail {
		if a == id {
			rf.avail = append(rf.avail[:i], rf.avail[i+1:]...)
			return
		}
	}
}

// Relocate moves the record at old onto some other page: rec (the
// record's bytes) is inserted — never back onto old.Page — and the old
// slot is tombstoned without remembering old.Page as an insert
// candidate, because the caller is draining it. On error the old record
// may or may not still be live; compaction treats any error as fatal
// for the pass (a duplicate insert is harmless — recovery and later
// passes resolve it).
func (rf *RecordFile) Relocate(old RID, rec []byte) (RID, error) {
	rf.dropAvail(old.Page)
	nrid, err := rf.Insert(rec)
	if err != nil {
		return NilRID, err
	}
	p, err := rf.pool.Fetch(old.Page)
	if err != nil {
		return NilRID, err
	}
	err = AsHeap(p).Delete(old.Slot)
	rf.pool.Unpin(old.Page, err == nil)
	if err != nil {
		return NilRID, err
	}
	return nrid, nil
}

// FreeEmptyPage unlinks a record-free page from the chain and returns
// it to the file's free list. prevHint, when it still directly precedes
// id, saves the predecessor walk; a stale hint (the chain head moved,
// or an intervening page was freed first) falls back to a scan from the
// head. The page must hold no live records.
func (rf *RecordFile) FreeEmptyPage(prevHint, id PageID) error {
	p, err := rf.pool.Fetch(id)
	if err != nil {
		return err
	}
	h := AsHeap(p)
	live, next := h.Live(), h.Next()
	rf.pool.Unpin(id, false)
	if live != 0 {
		return fmt.Errorf("storage: FreeEmptyPage(%d): %d live records", id, live)
	}
	if rf.head == id {
		rf.head = next
	} else {
		prev, err := rf.findPredecessor(prevHint, id)
		if err != nil {
			return err
		}
		pp, err := rf.pool.Fetch(prev)
		if err != nil {
			return err
		}
		AsHeap(pp).SetNext(next)
		rf.pool.Unpin(prev, true)
	}
	rf.dropAvail(id)
	return rf.pool.FreePage(id)
}

// findPredecessor locates the chain page whose Next link is id, trying
// hint first.
func (rf *RecordFile) findPredecessor(hint, id PageID) (PageID, error) {
	if hint != InvalidPage && hint != id {
		p, err := rf.pool.Fetch(hint)
		if err != nil {
			return InvalidPage, err
		}
		ok := AsHeap(p).Next() == id
		rf.pool.Unpin(hint, false)
		if ok {
			return hint, nil
		}
	}
	for cur := rf.head; cur != InvalidPage; {
		p, err := rf.pool.Fetch(cur)
		if err != nil {
			return InvalidPage, err
		}
		next := AsHeap(p).Next()
		rf.pool.Unpin(cur, false)
		if next == id {
			return cur, nil
		}
		cur = next
	}
	return InvalidPage, fmt.Errorf("storage: page %d not in heap chain", id)
}

// Pages returns the page ids of the chain in order (diagnostics).
func (rf *RecordFile) Pages() ([]PageID, error) {
	var out []PageID
	for id := rf.head; id != InvalidPage; {
		out = append(out, id)
		p, err := rf.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		next := AsHeap(p).Next()
		rf.pool.Unpin(id, false)
		id = next
	}
	return out, nil
}

package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Magic identifies an Ode database file.
var Magic = [8]byte{'O', 'D', 'E', 'D', 'B', '0', '0', '1'}

// BootSize is the number of bytes of the meta page reserved for the
// layers above storage (tree roots, OID counters, catalog pointers).
const BootSize = 256

// Meta page payload layout:
//
//	[0:8)    magic
//	[8:12)   page count
//	[12:16)  free list head
//	[16:16+BootSize) boot record for higher layers
const (
	metaOffMagic    = 0
	metaOffCount    = 8
	metaOffFreeHead = 12
	metaOffBoot     = 16
)

// ErrNotOdeFile reports a bad magic number.
var ErrNotOdeFile = errors.New("storage: not an Ode database file")

// FileStore is the paged file: it owns page allocation (with a free
// list threaded through freed pages) and raw page I/O. All methods are
// safe for concurrent use.
type FileStore struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	pages     uint32 // number of pages including meta
	freeHead  PageID
	boot      [BootSize]byte
	bootDirty bool
}

// CreateFile creates a new database file at path. It fails if the file
// already exists.
func CreateFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	fs := &FileStore{f: f, path: path, pages: 1, freeHead: InvalidPage}
	if err := fs.writeMeta(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return fs, nil
}

// OpenFile opens an existing database file.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	fs := &FileStore{f: f, path: path}
	if err := fs.readMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// Create opens path, creating the file when missing. The boolean result
// reports whether the file was newly created.
func Create(path string) (*FileStore, bool, error) {
	if _, err := os.Stat(path); err == nil {
		fs, err := OpenFile(path)
		return fs, false, err
	}
	fs, err := CreateFile(path)
	return fs, true, err
}

func (fs *FileStore) readMeta() error {
	var p Page
	p.id = 0
	if _, err := fs.f.ReadAt(p.data[:], 0); err != nil {
		return fmt.Errorf("storage: read meta: %w", err)
	}
	if err := p.verify(); err != nil {
		return err
	}
	pl := p.Payload()
	if [8]byte(pl[metaOffMagic:metaOffMagic+8]) != Magic {
		return ErrNotOdeFile
	}
	fs.pages = binary.LittleEndian.Uint32(pl[metaOffCount:])
	fs.freeHead = PageID(binary.LittleEndian.Uint32(pl[metaOffFreeHead:]))
	copy(fs.boot[:], pl[metaOffBoot:metaOffBoot+BootSize])
	return nil
}

// writeMeta persists the meta page. Caller holds fs.mu (or is the
// constructor).
func (fs *FileStore) writeMeta() error {
	var p Page
	p.id = 0
	p.SetType(TypeMeta)
	pl := p.Payload()
	copy(pl[metaOffMagic:], Magic[:])
	binary.LittleEndian.PutUint32(pl[metaOffCount:], fs.pages)
	binary.LittleEndian.PutUint32(pl[metaOffFreeHead:], uint32(fs.freeHead))
	copy(pl[metaOffBoot:], fs.boot[:])
	p.seal()
	if _, err := fs.f.WriteAt(p.data[:], 0); err != nil {
		return fmt.Errorf("storage: write meta: %w", err)
	}
	fs.bootDirty = false
	return nil
}

// Boot returns a copy of the boot record.
func (fs *FileStore) Boot() [BootSize]byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.boot
}

// SetBoot replaces the boot record; it is persisted on the next Sync.
func (fs *FileStore) SetBoot(b [BootSize]byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.boot = b
	fs.bootDirty = true
}

// NumPages returns the current page count (including meta and free
// pages).
func (fs *FileStore) NumPages() uint32 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.pages
}

// Allocate returns a fresh page id, reusing the free list when
// possible. The page content on disk is unspecified; callers initialize
// it through the buffer pool.
func (fs *FileStore) Allocate() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.freeHead != InvalidPage {
		id := fs.freeHead
		// The freed page stores the next free id in its payload.
		var p Page
		p.id = id
		if _, err := fs.f.ReadAt(p.data[:], int64(id)*PageSize); err != nil {
			return InvalidPage, fmt.Errorf("storage: read free page %d: %w", id, err)
		}
		fs.freeHead = PageID(binary.LittleEndian.Uint32(p.Payload()))
		return id, nil
	}
	id := PageID(fs.pages)
	fs.pages++
	return id, nil
}

// Free returns a page to the free list.
func (fs *FileStore) Free(id PageID) error {
	if id == InvalidPage {
		return errors.New("storage: Free(meta page)")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var p Page
	p.id = id
	p.SetType(TypeFree)
	binary.LittleEndian.PutUint32(p.Payload(), uint32(fs.freeHead))
	p.seal()
	if _, err := fs.f.WriteAt(p.data[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: free page %d: %w", id, err)
	}
	fs.freeHead = id
	return nil
}

// ReadPage fills p with the on-disk image of page id.
func (fs *FileStore) ReadPage(id PageID, p *Page) error {
	fs.mu.Lock()
	inRange := uint32(id) < fs.pages
	fs.mu.Unlock()
	if !inRange {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if err := fpPageRead.Check(); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p.id = id
	n, err := fs.f.ReadAt(p.data[:], int64(id)*PageSize)
	if err == io.EOF && n == 0 {
		// Allocated but never written (file not yet extended): a fresh
		// zero page.
		p.reset()
		return nil
	}
	if err != nil && !(err == io.EOF && n == PageSize) {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return p.verify()
}

// WritePage seals p (id + checksum) and writes it at its position.
func (fs *FileStore) WritePage(p *Page) error {
	p.seal()
	if k, ferr := fpPageWrite.CheckIO(PageSize); ferr != nil {
		// Simulated crash mid-write: persist only the first k bytes,
		// leaving a torn page at the home position.
		if k > 0 {
			fs.f.WriteAt(p.data[:k], int64(p.id)*PageSize)
		}
		return fmt.Errorf("storage: write page %d: %w", p.id, ferr)
	}
	if _, err := fs.f.WriteAt(p.data[:], int64(p.id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", p.id, err)
	}
	return nil
}

// Sync flushes the meta page (if dirty) and fsyncs the file.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.writeMeta(); err != nil {
		return err
	}
	if err := fpSync.Check(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (fs *FileStore) Close() error {
	if err := fs.Sync(); err != nil {
		fs.f.Close()
		return err
	}
	return fs.f.Close()
}

// Path returns the file path.
func (fs *FileStore) Path() string { return fs.path }

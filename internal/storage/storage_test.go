package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newTestFile(t testing.TB) *FileStore {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.odb")
	fs, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func newTestPool(t testing.TB, capacity int) (*FileStore, *Pool) {
	t.Helper()
	fs := newTestFile(t)
	return fs, NewPool(fs, capacity, nil, nil)
}

func TestFileCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.odb")
	fs, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var boot [BootSize]byte
	copy(boot[:], "hello boot")
	fs.SetBoot(boot)
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var p Page
	p.id = id
	p.SetType(TypeHeap)
	copy(p.Payload(), "payload bytes")
	if err := fs.WritePage(&p); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if got := fs2.Boot(); !bytes.HasPrefix(got[:], []byte("hello boot")) {
		t.Error("boot record lost")
	}
	if fs2.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", fs2.NumPages())
	}
	var q Page
	if err := fs2.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(q.Payload(), []byte("payload bytes")) {
		t.Error("page payload lost")
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.odb")
	fs, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()
	if _, err := CreateFile(path); err == nil {
		t.Fatal("CreateFile should refuse an existing file")
	}
}

func TestOpenRejectsNonOdeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	junk := make([]byte, PageSize)
	copy(junk, "not a database")
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile should reject a non-Ode file")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.odb")
	fs, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fs.Allocate()
	var p Page
	p.id = id
	p.SetType(TypeHeap)
	copy(p.Payload(), "important")
	if err := fs.WritePage(&p); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Flip a byte in the page body.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(id)*PageSize+PageHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	var q Page
	if err := fs2.ReadPage(id, &q); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadPage err = %v, want checksum failure", err)
	}
}

func TestFreeListReusesPages(t *testing.T) {
	fs := newTestFile(t)
	a, _ := fs.Allocate()
	b, _ := fs.Allocate()
	if err := fs.Free(a); err != nil {
		t.Fatal(err)
	}
	c, _ := fs.Allocate()
	if c != a {
		t.Errorf("expected freed page %d to be reused, got %d", a, c)
	}
	d, _ := fs.Allocate()
	if d == b || d == c {
		t.Errorf("fresh allocation %d collides", d)
	}
	if err := fs.Free(0); err == nil {
		t.Error("freeing the meta page must fail")
	}
}

func TestHeapInsertGetDelete(t *testing.T) {
	var p Page
	p.id = 1
	h := AsHeap(&p)
	s1, err := h.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := h.Insert([]byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Get(s1); string(got) != "alpha" {
		t.Errorf("Get(s1) = %q", got)
	}
	if got, _ := h.Get(s2); string(got) != "beta" {
		t.Errorf("Get(s2) = %q", got)
	}
	if err := h.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(s1); !errors.Is(err, ErrNoRecord) {
		t.Errorf("Get after delete err = %v", err)
	}
	if err := h.Delete(s1); !errors.Is(err, ErrNoRecord) {
		t.Errorf("double delete err = %v", err)
	}
	// Slot reuse.
	s3, err := h.Insert([]byte("gamma"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("tombstoned slot not reused: got %d, want %d", s3, s1)
	}
	if h.Live() != 2 {
		t.Errorf("Live = %d, want 2", h.Live())
	}
}

func TestHeapUpdateInPlaceAndGrow(t *testing.T) {
	var p Page
	p.id = 1
	h := AsHeap(&p)
	s, _ := h.Insert([]byte("aaaa"))
	if err := h.Update(s, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Get(s); string(got) != "bb" {
		t.Errorf("after shrink: %q", got)
	}
	if err := h.Update(s, []byte("cccccccccc")); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Get(s); string(got) != "cccccccccc" {
		t.Errorf("after grow: %q", got)
	}
}

func TestHeapFillCompactsAndReportsFull(t *testing.T) {
	var p Page
	p.id = 1
	h := AsHeap(&p)
	rec := bytes.Repeat([]byte("x"), 100)
	var slots []uint16
	for {
		s, err := h.Insert(rec)
		if errors.Is(err, ErrPageFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if len(slots) < 30 {
		t.Fatalf("only %d records of 100 bytes fit in a page", len(slots))
	}
	// Delete every other record, then insert larger records into the
	// fragmented space: compaction must make it work.
	for i := 0; i < len(slots); i += 2 {
		if err := h.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("y"), 150)
	n := 0
	for {
		if _, err := h.Insert(big); err != nil {
			break
		}
		n++
	}
	if n < len(slots)/4 {
		t.Errorf("compaction reclaimed too little: %d big records", n)
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	var p Page
	h := AsHeap(&p)
	if _, err := h.Insert(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversized record must be rejected")
	}
	if _, err := h.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Fatalf("max-size record must fit: %v", err)
	}
}

func TestPoolFetchCachesAndEvicts(t *testing.T) {
	fs, bp := newTestPool(t, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		copy(p.Payload(), fmt.Sprintf("page-%d", i))
		p.SetType(TypeHeap)
		ids = append(ids, p.ID())
		bp.Unpin(p.ID(), true)
	}
	// All four must be readable even though the pool holds only two.
	for i, id := range ids {
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("page-%d", i)
		if !bytes.HasPrefix(p.Payload(), []byte(want)) {
			t.Errorf("page %d content %q, want prefix %q", id, p.Payload()[:8], want)
		}
		bp.Unpin(id, false)
	}
	hits, misses, evictions := bp.Stats()
	if evictions == 0 {
		t.Error("expected evictions with pool capacity 2")
	}
	_ = hits
	_ = misses
	_ = fs
}

func TestPoolExhaustionWhenAllPinned(t *testing.T) {
	_, bp := newTestPool(t, 2)
	p1, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.NewPage(); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
	bp.Unpin(p1.ID(), true)
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
	_ = p2
}

func TestPoolDirtyEvictionPersists(t *testing.T) {
	fs, bp := newTestPool(t, 1)
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	p.SetType(TypeHeap)
	copy(p.Payload(), "dirty data")
	bp.Unpin(id, true)
	// Force eviction by allocating another page.
	q, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(q.ID(), true)
	// Read the evicted page straight from the file.
	var raw Page
	if err := fs.ReadPage(id, &raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw.Payload(), []byte("dirty data")) {
		t.Error("dirty page was not written back on eviction")
	}
}

func TestPoolFlushAllAndReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.odb")
	fs, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewPool(fs, 8, nil, nil)
	p, _ := bp.NewPage()
	id := p.ID()
	p.SetType(TypeHeap)
	copy(p.Payload(), "flushed")
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	var q Page
	if err := fs2.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(q.Payload(), []byte("flushed")) {
		t.Error("FlushAll did not persist the page")
	}
}

func TestUnpinPanicsWithoutPin(t *testing.T) {
	_, bp := newTestPool(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bp.Unpin(99, false)
}

func TestRecordFileCRUD(t *testing.T) {
	_, bp := newTestPool(t, 8)
	rf := NewRecordFile(bp, InvalidPage)
	rid, err := rf.Insert([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rf.Get(rid)
	if err != nil || string(got) != "first" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	rid2, err := rf.Update(rid, []byte("updated"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := rf.Get(rid2); string(got) != "updated" {
		t.Errorf("after update: %q", got)
	}
	if err := rf.Delete(rid2); err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Get(rid2); !errors.Is(err, ErrNoRecord) {
		t.Errorf("Get after delete: %v", err)
	}
}

func TestRecordFileSpillsAcrossPages(t *testing.T) {
	_, bp := newTestPool(t, 16)
	rf := NewRecordFile(bp, InvalidPage)
	rec := bytes.Repeat([]byte("z"), 400)
	var rids []RID
	for i := 0; i < 50; i++ {
		rid, err := rf.Insert(append(rec, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pages, err := rf.Pages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) < 3 {
		t.Errorf("50 records of 400B should span multiple pages, got %d", len(pages))
	}
	for i, rid := range rids {
		got, err := rf.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if got[len(got)-1] != byte(i) {
			t.Errorf("record %d corrupted", i)
		}
	}
}

func TestRecordFileUpdateRelocates(t *testing.T) {
	_, bp := newTestPool(t, 16)
	rf := NewRecordFile(bp, InvalidPage)
	// Fill a page almost completely.
	pad, err := rf.Insert(bytes.Repeat([]byte("p"), 3000))
	if err != nil {
		t.Fatal(err)
	}
	small, err := rf.Insert([]byte("small"))
	if err != nil {
		t.Fatal(err)
	}
	if pad.Page != small.Page {
		t.Skip("records landed on different pages; cannot force relocation")
	}
	// Grow the small record beyond the page's remaining space.
	newRID, err := rf.Update(small, bytes.Repeat([]byte("g"), 2000))
	if err != nil {
		t.Fatal(err)
	}
	if newRID == small {
		t.Error("expected relocation to a new RID")
	}
	got, err := rf.Get(newRID)
	if err != nil || len(got) != 2000 {
		t.Fatalf("relocated record: %d bytes, %v", len(got), err)
	}
}

func TestRecordFileIterate(t *testing.T) {
	_, bp := newTestPool(t, 16)
	rf := NewRecordFile(bp, InvalidPage)
	want := map[string]bool{}
	for i := 0; i < 200; i++ {
		s := fmt.Sprintf("rec-%03d", i)
		if _, err := rf.Insert([]byte(s)); err != nil {
			t.Fatal(err)
		}
		want[s] = true
	}
	got := map[string]bool{}
	err := rf.Iterate(func(_ RID, rec []byte) (bool, error) {
		got[string(rec)] = true
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d records, want %d", len(got), len(want))
	}
	for s := range want {
		if !got[s] {
			t.Errorf("missing %s", s)
		}
	}
}

func TestRecordFileModelCheck(t *testing.T) {
	_, bp := newTestPool(t, 32)
	rf := NewRecordFile(bp, InvalidPage)
	r := rand.New(rand.NewSource(7))
	model := map[RID][]byte{}
	var keys []RID
	for step := 0; step < 2000; step++ {
		switch op := r.Intn(10); {
		case op < 5 || len(keys) == 0: // insert
			rec := make([]byte, 1+r.Intn(300))
			r.Read(rec)
			rid, err := rf.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := model[rid]; dup {
				t.Fatalf("step %d: RID %v reused while live", step, rid)
			}
			model[rid] = append([]byte(nil), rec...)
			keys = append(keys, rid)
		case op < 7: // update
			i := r.Intn(len(keys))
			rec := make([]byte, 1+r.Intn(600))
			r.Read(rec)
			nrid, err := rf.Update(keys[i], rec)
			if err != nil {
				t.Fatal(err)
			}
			delete(model, keys[i])
			if _, dup := model[nrid]; dup {
				t.Fatalf("step %d: update relocated onto live RID", step)
			}
			model[nrid] = append([]byte(nil), rec...)
			keys[i] = nrid
		case op < 9: // get
			i := r.Intn(len(keys))
			got, err := rf.Get(keys[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model[keys[i]]) {
				t.Fatalf("step %d: Get(%v) mismatch", step, keys[i])
			}
		default: // delete
			i := r.Intn(len(keys))
			if err := rf.Delete(keys[i]); err != nil {
				t.Fatal(err)
			}
			delete(model, keys[i])
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		}
	}
	// Final integrity scan.
	count := 0
	err := rf.Iterate(func(rid RID, rec []byte) (bool, error) {
		want, ok := model[rid]
		if !ok {
			return false, fmt.Errorf("unexpected record at %v", rid)
		}
		if !bytes.Equal(rec, want) {
			return false, fmt.Errorf("content mismatch at %v", rid)
		}
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(model) {
		t.Fatalf("scan found %d records, model has %d", count, len(model))
	}
	if bp.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", bp.PinnedCount())
	}
}

func TestDoubleWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.odb")
	fs, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fs.Allocate()
	var p Page
	p.id = id
	p.SetType(TypeHeap)
	copy(p.Payload(), "good version")
	dw, err := OpenDoubleWriter(path + ".dw")
	if err != nil {
		t.Fatal(err)
	}
	// Stage the page, then simulate a torn in-place write: garbage at
	// the home position.
	if err := dw.Stage([]*Page{&p}); err != nil {
		t.Fatal(err)
	}
	garbage := bytes.Repeat([]byte{0xAB}, PageSize)
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.WriteAt(garbage, int64(id)*PageSize)
	f.Close()

	restored, err := dw.Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d pages, want 1", restored)
	}
	var q Page
	if err := fs.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(q.Payload(), []byte("good version")) {
		t.Error("restored page has wrong content")
	}
	// A second recovery is a no-op.
	if n, err := dw.Recover(fs); err != nil || n != 0 {
		t.Errorf("second recover = %d, %v", n, err)
	}
	dw.Close()
	fs.Close()
}

func TestDoubleWriteSkipsIntactHome(t *testing.T) {
	fs := newTestFile(t)
	id, _ := fs.Allocate()
	var p Page
	p.id = id
	p.SetType(TypeHeap)
	copy(p.Payload(), "v2")
	dw, err := OpenDoubleWriter(filepath.Join(t.TempDir(), "dw"))
	if err != nil {
		t.Fatal(err)
	}
	defer dw.Close()
	if err := dw.Stage([]*Page{&p}); err != nil {
		t.Fatal(err)
	}
	// Complete the in-place write: home copy is intact and NEWER content
	// should not be clobbered by recovery.
	copy(p.Payload(), "v3")
	if err := fs.WritePage(&p); err != nil {
		t.Fatal(err)
	}
	if n, err := dw.Recover(fs); err != nil || n != 0 {
		t.Fatalf("recover = %d, %v (should skip intact home)", n, err)
	}
	var q Page
	if err := fs.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(q.Payload(), []byte("v3")) {
		t.Error("recovery clobbered an intact newer page")
	}
}

package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"ode/internal/obs"
)

// FlushLSNFunc is the WAL hook: before a dirty page with page-LSN n is
// written back, the buffer pool calls the hook to ensure the log is
// durable up to n (the write-ahead rule).
type FlushLSNFunc func(lsn uint64) error

// Pool is the buffer pool: a fixed set of frames caching pages, with
// LRU replacement over unpinned frames and write-back of dirty pages.
//
// The pool is lock-striped: frames live in shards keyed by PageID, each
// with its own mutex, frame map, and LRU list, so concurrent readers of
// distinct pages do not serialize on one mutex. Sequential page ids
// round-robin across shards, which spreads extent scans evenly. Small
// pools (fewer than 2*minShardFrames frames) collapse to a single shard
// and behave exactly like the classic one-mutex pool, so capacity-edge
// semantics (ErrPoolFull when every frame of a shard is pinned) only
// loosen when the pool is large enough that it cannot matter.
type Pool struct {
	fs       *FileStore
	dw       *DoubleWriter // optional: atomic in-place page writes
	flushLSN FlushLSNFunc

	shards []poolShard
	mask   uint32 // len(shards)-1; shard count is a power of two

	// met/smet are never nil: NewPool installs unregistered zero sets
	// and SetMetrics swaps in the DB-wide ones. All counters are
	// atomics shared by every shard, so per-shard activity rolls up
	// into one PoolMetrics set and Stats readers never race writers.
	met  *obs.PoolMetrics
	smet *obs.StorageMetrics
}

type poolShard struct {
	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // of *frame; front = most recently used
	cap    int
}

type frame struct {
	page  Page
	pins  int
	dirty bool
	elem  *list.Element
}

// ErrPoolFull is returned when every frame is pinned.
var ErrPoolFull = errors.New("storage: buffer pool exhausted (all frames pinned)")

// Shard sizing: never split below minShardFrames frames per shard (tiny
// pools keep exact single-mutex semantics), never beyond maxPoolShards.
const (
	maxPoolShards  = 16
	minShardFrames = 64
)

func poolShardCount(capacity int) int {
	n := 1
	for n < maxPoolShards && capacity/(n*2) >= minShardFrames {
		n *= 2
	}
	return n
}

// NewPool creates a pool of capacity frames over fs. flushLSN may be nil
// when no WAL is attached, and dw may be nil to write pages in place
// without torn-page protection (e.g. unit tests).
func NewPool(fs *FileStore, capacity int, dw *DoubleWriter, flushLSN FlushLSNFunc) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	n := poolShardCount(capacity)
	bp := &Pool{
		fs:       fs,
		dw:       dw,
		flushLSN: flushLSN,
		shards:   make([]poolShard, n),
		mask:     uint32(n - 1),
		met:      &obs.PoolMetrics{},
		smet:     &obs.StorageMetrics{},
	}
	base, rem := capacity/n, capacity%n
	for i := range bp.shards {
		c := base
		if i < rem {
			c++
		}
		bp.shards[i] = poolShard{
			frames: make(map[PageID]*frame, c),
			lru:    list.New(),
			cap:    c,
		}
	}
	bp.met.Shards.Set(int64(n))
	return bp
}

// shard maps a page id to its shard.
func (bp *Pool) shard(id PageID) *poolShard {
	return &bp.shards[uint32(id)&bp.mask]
}

// ShardCount reports how many lock stripes the pool uses.
func (bp *Pool) ShardCount() int { return len(bp.shards) }

// SetMetrics attaches the pool and storage metric sets. Call before
// serving traffic; both must be non-nil.
func (bp *Pool) SetMetrics(pm *obs.PoolMetrics, sm *obs.StorageMetrics) {
	bp.met = pm
	bp.smet = sm
	pm.Shards.Set(int64(len(bp.shards)))
}

// Stats returns (hits, misses, evictions).
func (bp *Pool) Stats() (hits, misses, evictions uint64) {
	return bp.met.Hits.Load(), bp.met.Misses.Load(), bp.met.Evictions.Load()
}

// Fetch pins page id and returns it. The caller must Unpin it exactly
// once, passing dirty=true if it modified the page.
func (bp *Pool) Fetch(id PageID) (*Page, error) {
	s := bp.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if fr, ok := s.frames[id]; ok {
		fr.pins++
		s.lru.MoveToFront(fr.elem)
		bp.met.Hits.Inc()
		bp.met.Pins.Inc()
		bp.met.Pinned.Add(1)
		return &fr.page, nil
	}
	bp.met.Misses.Inc()
	fr, err := bp.victim(s)
	if err != nil {
		return nil, err
	}
	if err := bp.fs.ReadPage(id, &fr.page); err != nil {
		return nil, err
	}
	bp.smet.PageReads.Inc()
	s.install(bp, id, fr)
	return &fr.page, nil
}

// NewPage allocates a fresh page, pins it, and returns it zeroed. The
// caller must Unpin with dirty=true.
func (bp *Pool) NewPage() (*Page, error) {
	id, err := bp.fs.Allocate()
	if err != nil {
		return nil, err
	}
	s := bp.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, err := bp.victim(s)
	if err != nil {
		return nil, err
	}
	fr.page.reset()
	fr.page.id = id
	fr.dirty = true
	s.install(bp, id, fr)
	return &fr.page, nil
}

// victim returns a free frame, evicting the least recently used
// unpinned page if the shard is at capacity. Caller holds s.mu.
func (bp *Pool) victim(s *poolShard) (*frame, error) {
	if len(s.frames) < s.cap {
		return &frame{pins: 0}, nil
	}
	for e := s.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*frame)
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := bp.writeBack(fr); err != nil {
				return nil, err
			}
		}
		delete(s.frames, fr.page.id)
		s.lru.Remove(e)
		fr.elem = nil
		bp.met.Evictions.Inc()
		return fr, nil
	}
	return nil, ErrPoolFull
}

// install registers the frame in the shard's map and LRU. Caller holds
// s.mu.
func (s *poolShard) install(bp *Pool, id PageID, fr *frame) {
	fr.pins = 1
	fr.elem = s.lru.PushFront(fr)
	s.frames[id] = fr
	bp.met.Pins.Inc()
	bp.met.Pinned.Add(1)
}

// Unpin releases one pin; dirty records that the caller changed the
// page.
func (bp *Pool) Unpin(id PageID, dirty bool) {
	s := bp.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin of unpinned page %d", id))
	}
	fr.pins--
	bp.met.Pinned.Add(-1)
	if dirty {
		fr.dirty = true
	}
}

// writeBack flushes one dirty frame, honoring the WAL rule and staging
// the page in the double-write buffer when one is attached. Caller
// holds the owning shard's mutex; evictions in other shards may write
// back concurrently, which the double writer serializes internally.
func (bp *Pool) writeBack(fr *frame) error {
	if err := fpPoolEvict.Check(); err != nil {
		return err
	}
	if bp.flushLSN != nil {
		if err := bp.flushLSN(fr.page.LSN()); err != nil {
			return err
		}
	}
	if bp.dw != nil {
		if err := bp.dw.Stage([]*Page{&fr.page}); err != nil {
			return err
		}
		bp.smet.DWFlushes.Inc()
	}
	if err := bp.fs.WritePage(&fr.page); err != nil {
		return err
	}
	bp.smet.PageWrites.Inc()
	fr.dirty = false
	return nil
}

// lockAll acquires every shard mutex in index order (the only place two
// shard locks are ever held together, so the order cannot deadlock).
func (bp *Pool) lockAll() {
	for i := range bp.shards {
		bp.shards[i].mu.Lock()
	}
}

func (bp *Pool) unlockAll() {
	for i := range bp.shards {
		bp.shards[i].mu.Unlock()
	}
}

// FlushAll writes back every dirty page (pinned or not) and syncs the
// file; the whole batch is staged in the double-write buffer first so a
// crash mid-flush tears no page. Used at checkpoints and on close.
func (bp *Pool) FlushAll() error {
	bp.lockAll()
	defer bp.unlockAll()
	var dirty []*frame
	var maxLSN uint64
	for i := range bp.shards {
		for _, fr := range bp.shards[i].frames {
			if fr.dirty {
				dirty = append(dirty, fr)
				if l := fr.page.LSN(); l > maxLSN {
					maxLSN = l
				}
			}
		}
	}
	if len(dirty) == 0 {
		return bp.fs.Sync()
	}
	if bp.flushLSN != nil {
		if err := bp.flushLSN(maxLSN); err != nil {
			return err
		}
	}
	if bp.dw != nil {
		// Stage in bounded batches.
		for i := 0; i < len(dirty); i += dwMaxBatch {
			end := i + dwMaxBatch
			if end > len(dirty) {
				end = len(dirty)
			}
			batch := make([]*Page, 0, end-i)
			for _, fr := range dirty[i:end] {
				batch = append(batch, &fr.page)
			}
			if err := bp.dw.Stage(batch); err != nil {
				return err
			}
			bp.smet.DWFlushes.Inc()
			for _, fr := range dirty[i:end] {
				if err := bp.fs.WritePage(&fr.page); err != nil {
					return err
				}
				bp.smet.PageWrites.Inc()
				fr.dirty = false
			}
			if err := bp.fs.Sync(); err != nil {
				return err
			}
			if err := bp.dw.Clear(); err != nil {
				return err
			}
		}
		return nil
	}
	for _, fr := range dirty {
		if err := bp.fs.WritePage(&fr.page); err != nil {
			return err
		}
		bp.smet.PageWrites.Inc()
		fr.dirty = false
	}
	return bp.fs.Sync()
}

// FreePage drops the page from the pool (it must be unpinned) and
// returns it to the file's free list.
func (bp *Pool) FreePage(id PageID) error {
	s := bp.shard(id)
	s.mu.Lock()
	if fr, ok := s.frames[id]; ok {
		if fr.pins > 0 {
			s.mu.Unlock()
			return fmt.Errorf("storage: FreePage(%d) while pinned", id)
		}
		delete(s.frames, id)
		s.lru.Remove(fr.elem)
	}
	s.mu.Unlock()
	return bp.fs.Free(id)
}

// PinnedCount reports how many frames are currently pinned (test and
// leak-check helper).
func (bp *Pool) PinnedCount() int {
	n := 0
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		for _, fr := range s.frames {
			if fr.pins > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

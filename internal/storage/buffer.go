package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"ode/internal/obs"
)

// FlushLSNFunc is the WAL hook: before a dirty page with page-LSN n is
// written back, the buffer pool calls the hook to ensure the log is
// durable up to n (the write-ahead rule).
type FlushLSNFunc func(lsn uint64) error

// Pool is the buffer pool: a fixed set of frames caching pages, with
// LRU replacement over unpinned frames and write-back of dirty pages.
type Pool struct {
	fs       *FileStore
	dw       *DoubleWriter // optional: atomic in-place page writes
	flushLSN FlushLSNFunc

	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // of *frame; front = most recently used
	cap    int

	// met/smet are never nil: NewPool installs unregistered zero sets
	// and SetMetrics swaps in the DB-wide ones. All counters are
	// atomics, so Stats readers never race writers.
	met  *obs.PoolMetrics
	smet *obs.StorageMetrics
}

type frame struct {
	page  Page
	pins  int
	dirty bool
	elem  *list.Element
}

// ErrPoolFull is returned when every frame is pinned.
var ErrPoolFull = errors.New("storage: buffer pool exhausted (all frames pinned)")

// NewPool creates a pool of capacity frames over fs. flushLSN may be nil
// when no WAL is attached, and dw may be nil to write pages in place
// without torn-page protection (e.g. unit tests).
func NewPool(fs *FileStore, capacity int, dw *DoubleWriter, flushLSN FlushLSNFunc) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		fs:       fs,
		dw:       dw,
		flushLSN: flushLSN,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
		cap:      capacity,
		met:      &obs.PoolMetrics{},
		smet:     &obs.StorageMetrics{},
	}
}

// SetMetrics attaches the pool and storage metric sets. Call before
// serving traffic; both must be non-nil.
func (bp *Pool) SetMetrics(pm *obs.PoolMetrics, sm *obs.StorageMetrics) {
	bp.met = pm
	bp.smet = sm
}

// Stats returns (hits, misses, evictions).
func (bp *Pool) Stats() (hits, misses, evictions uint64) {
	return bp.met.Hits.Load(), bp.met.Misses.Load(), bp.met.Evictions.Load()
}

// Fetch pins page id and returns it. The caller must Unpin it exactly
// once, passing dirty=true if it modified the page.
func (bp *Pool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		fr.pins++
		bp.lru.MoveToFront(fr.elem)
		bp.met.Hits.Inc()
		bp.met.Pins.Inc()
		bp.met.Pinned.Add(1)
		return &fr.page, nil
	}
	bp.met.Misses.Inc()
	fr, err := bp.victim()
	if err != nil {
		return nil, err
	}
	if err := bp.fs.ReadPage(id, &fr.page); err != nil {
		bp.recycle(fr)
		return nil, err
	}
	bp.smet.PageReads.Inc()
	bp.install(id, fr)
	return &fr.page, nil
}

// NewPage allocates a fresh page, pins it, and returns it zeroed. The
// caller must Unpin with dirty=true.
func (bp *Pool) NewPage() (*Page, error) {
	id, err := bp.fs.Allocate()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.victim()
	if err != nil {
		return nil, err
	}
	fr.page.reset()
	fr.page.id = id
	fr.dirty = true
	bp.install(id, fr)
	return &fr.page, nil
}

// victim returns a free frame, evicting the least recently used
// unpinned page if the pool is at capacity. Caller holds bp.mu.
func (bp *Pool) victim() (*frame, error) {
	if len(bp.frames) < bp.cap {
		return &frame{pins: 0}, nil
	}
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*frame)
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := bp.writeBack(fr); err != nil {
				return nil, err
			}
		}
		delete(bp.frames, fr.page.id)
		bp.lru.Remove(e)
		fr.elem = nil
		bp.met.Evictions.Inc()
		return fr, nil
	}
	return nil, ErrPoolFull
}

// recycle returns an uninstalled frame obtained from victim; nothing to
// do because victim already detached it.
func (bp *Pool) recycle(*frame) {}

// install registers the frame in the map and LRU. Caller holds bp.mu.
func (bp *Pool) install(id PageID, fr *frame) {
	fr.pins = 1
	fr.elem = bp.lru.PushFront(fr)
	bp.frames[id] = fr
	bp.met.Pins.Inc()
	bp.met.Pinned.Add(1)
}

// Unpin releases one pin; dirty records that the caller changed the
// page.
func (bp *Pool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin of unpinned page %d", id))
	}
	fr.pins--
	bp.met.Pinned.Add(-1)
	if dirty {
		fr.dirty = true
	}
}

// writeBack flushes one dirty frame, honoring the WAL rule and staging
// the page in the double-write buffer when one is attached. Caller
// holds bp.mu.
func (bp *Pool) writeBack(fr *frame) error {
	if bp.flushLSN != nil {
		if err := bp.flushLSN(fr.page.LSN()); err != nil {
			return err
		}
	}
	if bp.dw != nil {
		if err := bp.dw.Stage([]*Page{&fr.page}); err != nil {
			return err
		}
		bp.smet.DWFlushes.Inc()
	}
	if err := bp.fs.WritePage(&fr.page); err != nil {
		return err
	}
	bp.smet.PageWrites.Inc()
	fr.dirty = false
	return nil
}

// FlushAll writes back every dirty page (pinned or not) and syncs the
// file; the whole batch is staged in the double-write buffer first so a
// crash mid-flush tears no page. Used at checkpoints and on close.
func (bp *Pool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var dirty []*frame
	var maxLSN uint64
	for _, fr := range bp.frames {
		if fr.dirty {
			dirty = append(dirty, fr)
			if l := fr.page.LSN(); l > maxLSN {
				maxLSN = l
			}
		}
	}
	if len(dirty) == 0 {
		return bp.fs.Sync()
	}
	if bp.flushLSN != nil {
		if err := bp.flushLSN(maxLSN); err != nil {
			return err
		}
	}
	if bp.dw != nil {
		// Stage in bounded batches.
		for i := 0; i < len(dirty); i += dwMaxBatch {
			end := i + dwMaxBatch
			if end > len(dirty) {
				end = len(dirty)
			}
			batch := make([]*Page, 0, end-i)
			for _, fr := range dirty[i:end] {
				batch = append(batch, &fr.page)
			}
			if err := bp.dw.Stage(batch); err != nil {
				return err
			}
			bp.smet.DWFlushes.Inc()
			for _, fr := range dirty[i:end] {
				if err := bp.fs.WritePage(&fr.page); err != nil {
					return err
				}
				bp.smet.PageWrites.Inc()
				fr.dirty = false
			}
			if err := bp.fs.Sync(); err != nil {
				return err
			}
			if err := bp.dw.Clear(); err != nil {
				return err
			}
		}
		return nil
	}
	for _, fr := range dirty {
		if err := bp.fs.WritePage(&fr.page); err != nil {
			return err
		}
		bp.smet.PageWrites.Inc()
		fr.dirty = false
	}
	return bp.fs.Sync()
}

// FreePage drops the page from the pool (it must be unpinned) and
// returns it to the file's free list.
func (bp *Pool) FreePage(id PageID) error {
	bp.mu.Lock()
	if fr, ok := bp.frames[id]; ok {
		if fr.pins > 0 {
			bp.mu.Unlock()
			return fmt.Errorf("storage: FreePage(%d) while pinned", id)
		}
		delete(bp.frames, id)
		bp.lru.Remove(fr.elem)
	}
	bp.mu.Unlock()
	return bp.fs.Free(id)
}

// PinnedCount reports how many frames are currently pinned (test and
// leak-check helper).
func (bp *Pool) PinnedCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, fr := range bp.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}

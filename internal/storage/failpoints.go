package storage

import "ode/internal/failpoint"

// Failpoint sites on the storage I/O paths. Each is a no-op (one atomic
// load) unless armed by a test or the torture harness; see
// docs/TESTING.md for the site catalog.
var (
	// fpPageRead fires in ReadPage after the range check, before the
	// disk read.
	fpPageRead = failpoint.New("storage.page_read")
	// fpPageWrite fires in WritePage after sealing. Partial-write
	// actions leave a torn page image at the page's home position —
	// exactly what the double-write buffer exists to fence.
	fpPageWrite = failpoint.New("storage.page_write")
	// fpSync fires in Sync between the meta-page write and the fsync.
	fpSync = failpoint.New("storage.sync")
	// fpDWStage fires at the top of DoubleWriter.Stage. Partial-write
	// actions tear the side file itself, which recovery must tolerate.
	fpDWStage = failpoint.New("storage.dw_stage")
	// fpDWClear fires at the top of DoubleWriter.Clear.
	fpDWClear = failpoint.New("storage.dw_clear")
	// fpPoolEvict fires in the buffer pool's writeBack, the eviction
	// path that pushes a dirty victim frame to disk mid-transaction.
	fpPoolEvict = failpoint.New("storage.pool_evict")
)

package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RID addresses a record: page id plus slot number within the page.
type RID struct {
	Page PageID
	Slot uint16
}

// NilRID is the null record address.
var NilRID = RID{}

// IsNil reports whether the RID is null.
func (r RID) IsNil() bool { return r.Page == InvalidPage }

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Heap page payload layout (offsets within Payload()):
//
//	[0:2)  slot count
//	[2:4)  free-space offset (start of the record area's unused prefix)
//	[4:8)  next heap page (free-space chaining by the heap file layer)
//	[8:..) slot directory: 4 bytes per slot (offset uint16, length uint16)
//	records grow downward from the end of the payload
//
// A slot with offset 0 is a tombstone (record area offsets are always
// > 0 because the directory occupies the payload prefix).
const (
	heapOffNSlots  = 0
	heapOffFreePtr = 2
	heapOffNext    = 4
	heapDirStart   = 8
	slotEntrySize  = 4
)

// ErrPageFull is returned when a record does not fit in a page.
var ErrPageFull = errors.New("storage: page full")

// ErrNoRecord is returned for reads of deleted or absent slots.
var ErrNoRecord = errors.New("storage: no such record")

// MaxRecordSize is the largest record a heap page can hold.
const MaxRecordSize = PayloadSize - heapDirStart - slotEntrySize

// Heap provides the slotted-record view over a page. It is a transient
// facade: construct it around a pinned page, use it, drop it before
// unpinning.
type Heap struct {
	p *Page
}

// AsHeap views p as a heap page, formatting it if it is fresh.
func AsHeap(p *Page) Heap {
	if p.Type() != TypeHeap {
		p.SetType(TypeHeap)
		pl := p.Payload()
		binary.LittleEndian.PutUint16(pl[heapOffNSlots:], 0)
		binary.LittleEndian.PutUint16(pl[heapOffFreePtr:], uint16(PayloadSize))
		binary.LittleEndian.PutUint32(pl[heapOffNext:], uint32(InvalidPage))
	}
	return Heap{p: p}
}

func (h Heap) nslots() int {
	return int(binary.LittleEndian.Uint16(h.p.Payload()[heapOffNSlots:]))
}

func (h Heap) setNSlots(n int) {
	binary.LittleEndian.PutUint16(h.p.Payload()[heapOffNSlots:], uint16(n))
}

func (h Heap) freePtr() int {
	return int(binary.LittleEndian.Uint16(h.p.Payload()[heapOffFreePtr:]))
}

func (h Heap) setFreePtr(n int) {
	binary.LittleEndian.PutUint16(h.p.Payload()[heapOffFreePtr:], uint16(n))
}

// Next returns the next-page link used for free-space chaining.
func (h Heap) Next() PageID {
	return PageID(binary.LittleEndian.Uint32(h.p.Payload()[heapOffNext:]))
}

// SetNext sets the next-page link.
func (h Heap) SetNext(id PageID) {
	binary.LittleEndian.PutUint32(h.p.Payload()[heapOffNext:], uint32(id))
}

func (h Heap) slot(i int) (off, length int) {
	pl := h.p.Payload()
	base := heapDirStart + i*slotEntrySize
	return int(binary.LittleEndian.Uint16(pl[base:])), int(binary.LittleEndian.Uint16(pl[base+2:]))
}

func (h Heap) setSlot(i, off, length int) {
	pl := h.p.Payload()
	base := heapDirStart + i*slotEntrySize
	binary.LittleEndian.PutUint16(pl[base:], uint16(off))
	binary.LittleEndian.PutUint16(pl[base+2:], uint16(length))
}

// FreeSpace returns the bytes available for a new record (including its
// slot entry if a new slot would be needed).
func (h Heap) FreeSpace() int {
	dirEnd := heapDirStart + h.nslots()*slotEntrySize
	free := h.freePtr() - dirEnd - slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores rec in the page and returns its slot. It reuses
// tombstoned slots. ErrPageFull is returned when the record does not
// fit.
func (h Heap) Insert(rec []byte) (uint16, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	n := h.nslots()
	// Find a tombstoned slot to reuse.
	slot := -1
	for i := 0; i < n; i++ {
		if off, _ := h.slot(i); off == 0 {
			slot = i
			break
		}
	}
	need := len(rec)
	dirEnd := heapDirStart + n*slotEntrySize
	if slot == -1 {
		dirEnd += slotEntrySize // a new directory entry
	}
	if h.freePtr()-dirEnd < need {
		if h.compact(); h.freePtr()-dirEnd < need {
			return 0, ErrPageFull
		}
	}
	off := h.freePtr() - need
	copy(h.p.Payload()[off:], rec)
	h.setFreePtr(off)
	if slot == -1 {
		slot = n
		h.setNSlots(n + 1)
	}
	h.setSlot(slot, off, need)
	return uint16(slot), nil
}

// Get returns the record bytes in the given slot. The returned slice
// aliases the page; callers must copy before unpinning.
func (h Heap) Get(slot uint16) ([]byte, error) {
	if int(slot) >= h.nslots() {
		return nil, fmt.Errorf("%w: slot %d of page %d", ErrNoRecord, slot, h.p.id)
	}
	off, length := h.slot(int(slot))
	if off == 0 {
		return nil, fmt.Errorf("%w: slot %d of page %d (deleted)", ErrNoRecord, slot, h.p.id)
	}
	return h.p.Payload()[off : off+length], nil
}

// Update replaces the record in slot. If the new record fits in place
// (or the page has room after compaction) it succeeds; otherwise it
// returns ErrPageFull and the caller relocates the record.
func (h Heap) Update(slot uint16, rec []byte) error {
	if int(slot) >= h.nslots() {
		return fmt.Errorf("%w: slot %d of page %d", ErrNoRecord, slot, h.p.id)
	}
	off, length := h.slot(int(slot))
	if off == 0 {
		return fmt.Errorf("%w: slot %d of page %d (deleted)", ErrNoRecord, slot, h.p.id)
	}
	if len(rec) <= length {
		copy(h.p.Payload()[off:], rec)
		h.setSlot(int(slot), off, len(rec))
		return nil
	}
	// Delete then re-insert into the same slot.
	h.setSlot(int(slot), 0, 0)
	dirEnd := heapDirStart + h.nslots()*slotEntrySize
	if h.freePtr()-dirEnd < len(rec) {
		h.compact()
	}
	if h.freePtr()-dirEnd < len(rec) || len(rec) > MaxRecordSize {
		h.setSlot(int(slot), off, length) // restore
		return ErrPageFull
	}
	noff := h.freePtr() - len(rec)
	copy(h.p.Payload()[noff:], rec)
	h.setFreePtr(noff)
	h.setSlot(int(slot), noff, len(rec))
	return nil
}

// Delete tombstones the slot.
func (h Heap) Delete(slot uint16) error {
	if int(slot) >= h.nslots() {
		return fmt.Errorf("%w: slot %d of page %d", ErrNoRecord, slot, h.p.id)
	}
	if off, _ := h.slot(int(slot)); off == 0 {
		return fmt.Errorf("%w: slot %d of page %d (deleted)", ErrNoRecord, slot, h.p.id)
	}
	h.setSlot(int(slot), 0, 0)
	return nil
}

// NumSlots returns the number of directory entries (including
// tombstones).
func (h Heap) NumSlots() int { return h.nslots() }

// Live returns the number of live records.
func (h Heap) Live() int {
	live := 0
	for i := 0; i < h.nslots(); i++ {
		if off, _ := h.slot(i); off != 0 {
			live++
		}
	}
	return live
}

// compact rewrites the record area to squeeze out holes left by deletes
// and shrinking updates. Slot numbers are stable.
func (h Heap) compact() {
	type rec struct {
		slot, off, length int
	}
	var recs []rec
	for i := 0; i < h.nslots(); i++ {
		if off, length := h.slot(i); off != 0 {
			recs = append(recs, rec{i, off, length})
		}
	}
	// Copy records into a scratch area, then lay them back down from the
	// end of the payload.
	pl := h.p.Payload()
	scratch := make([]byte, 0, PayloadSize)
	for _, r := range recs {
		scratch = append(scratch, pl[r.off:r.off+r.length]...)
	}
	writeEnd := PayloadSize
	consumed := 0
	for _, r := range recs {
		writeEnd -= r.length
		copy(pl[writeEnd:], scratch[consumed:consumed+r.length])
		h.setSlot(r.slot, writeEnd, r.length)
		consumed += r.length
	}
	h.setFreePtr(writeEnd)
}

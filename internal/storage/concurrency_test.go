package storage

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestPoolConcurrentFetch hammers the pool from many goroutines, each
// reading and occasionally writing its own page, under eviction
// pressure. Run with -race.
func TestPoolConcurrentFetch(t *testing.T) {
	fs, bp := newTestPool(t, 8)
	const pages = 32
	ids := make([]PageID, pages)
	for i := range ids {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.SetType(TypeHeap)
		binary.LittleEndian.PutUint64(p.Payload(), uint64(i)<<32)
		ids[i] = p.ID()
		bp.Unpin(p.ID(), true)
	}

	const workers = 8
	const rounds = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				idx := (w*rounds + r) % pages
				p, err := bp.Fetch(ids[idx])
				if err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				hi := binary.LittleEndian.Uint64(p.Payload()) >> 32
				if hi != uint64(idx) {
					t.Errorf("page %d contains data for %d", idx, hi)
					bp.Unpin(ids[idx], false)
					return
				}
				dirty := false
				if w == 0 { // one writer bumps a counter in its own pages
					lo := binary.LittleEndian.Uint64(p.Payload()) & 0xFFFFFFFF
					binary.LittleEndian.PutUint64(p.Payload(), uint64(idx)<<32|(lo+1))
					dirty = true
				}
				bp.Unpin(ids[idx], dirty)
			}
		}(w)
	}
	wg.Wait()
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if bp.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", bp.PinnedCount())
	}
	// Verify the writer's increments survived the churn.
	var total uint64
	for i, id := range ids {
		var p Page
		if err := fs.ReadPage(id, &p); err != nil {
			t.Fatal(err)
		}
		if hi := binary.LittleEndian.Uint64(p.Payload()) >> 32; hi != uint64(i) {
			t.Fatalf("page %d corrupted", i)
		}
		total += binary.LittleEndian.Uint64(p.Payload()) & 0xFFFFFFFF
	}
	if total != rounds {
		t.Errorf("writer increments = %d, want %d", total, rounds)
	}
}

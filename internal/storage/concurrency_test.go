package storage

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestPoolConcurrentFetch hammers the pool from many goroutines, all
// reading (and one writing) a shared page set under eviction pressure.
// The pool synchronizes frames, not page content — content access is
// guarded by per-page locks here, as the engine's lock manager does.
// Run with -race.
func TestPoolConcurrentFetch(t *testing.T) {
	fs, bp := newTestPool(t, 8)
	const pages = 32
	ids := make([]PageID, pages)
	for i := range ids {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.SetType(TypeHeap)
		binary.LittleEndian.PutUint64(p.Payload(), uint64(i)<<32)
		ids[i] = p.ID()
		bp.Unpin(p.ID(), true)
	}

	const workers = 8
	const rounds = 500
	var pageMu [pages]sync.RWMutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				idx := (w*rounds + r) % pages
				p, err := bp.Fetch(ids[idx])
				if err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				dirty := w == 0 // one writer bumps a counter per round
				if dirty {
					pageMu[idx].Lock()
				} else {
					pageMu[idx].RLock()
				}
				hi := binary.LittleEndian.Uint64(p.Payload()) >> 32
				if dirty {
					lo := binary.LittleEndian.Uint64(p.Payload()) & 0xFFFFFFFF
					binary.LittleEndian.PutUint64(p.Payload(), uint64(idx)<<32|(lo+1))
					pageMu[idx].Unlock()
				} else {
					pageMu[idx].RUnlock()
				}
				if hi != uint64(idx) {
					t.Errorf("page %d contains data for %d", idx, hi)
					bp.Unpin(ids[idx], dirty)
					return
				}
				bp.Unpin(ids[idx], dirty)
			}
		}(w)
	}
	wg.Wait()
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if bp.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", bp.PinnedCount())
	}
	// Verify the writer's increments survived the churn.
	var total uint64
	for i, id := range ids {
		var p Page
		if err := fs.ReadPage(id, &p); err != nil {
			t.Fatal(err)
		}
		if hi := binary.LittleEndian.Uint64(p.Payload()) >> 32; hi != uint64(i) {
			t.Fatalf("page %d corrupted", i)
		}
		total += binary.LittleEndian.Uint64(p.Payload()) & 0xFFFFFFFF
	}
	if total != rounds {
		t.Errorf("writer increments = %d, want %d", total, rounds)
	}
}

func TestPoolShardCount(t *testing.T) {
	for _, tc := range []struct{ capacity, want int }{
		{1, 1},
		{8, 1},
		{64, 1},
		{127, 1},
		{128, 2},
		{256, 4},
		{1024, 16},
		{65536, 16},
	} {
		if got := poolShardCount(tc.capacity); got != tc.want {
			t.Errorf("poolShardCount(%d) = %d, want %d", tc.capacity, got, tc.want)
		}
	}
	_, bp := newTestPool(t, 1024)
	if bp.ShardCount() != 16 {
		t.Errorf("pool of 1024 built %d shards", bp.ShardCount())
	}
}

// TestShardedPoolStress churns a multi-shard pool from many goroutines
// — reads, writes, and concurrent FlushAll checkpoints — and verifies
// every page's content survives intact. Run with -race: this is the
// regression test for cross-shard writeBack and FlushAll interleaving.
func TestShardedPoolStress(t *testing.T) {
	fs, bp := newTestPool(t, 256) // 4 shards of 64
	if bp.ShardCount() < 2 {
		t.Fatalf("stress test needs >1 shard, got %d", bp.ShardCount())
	}
	const pages = 512 // 2x capacity: constant eviction pressure
	ids := make([]PageID, pages)
	for i := range ids {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.SetType(TypeHeap)
		binary.LittleEndian.PutUint64(p.Payload(), uint64(i)<<32)
		ids[i] = p.ID()
		bp.Unpin(p.ID(), true)
	}

	const workers = 8
	const rounds = 400
	// Phase 1: read/write churn. Writers mutate only pages they hold
	// pinned; eviction pressure forces concurrent write-backs from
	// different shards (the cross-shard DoubleWriter path).
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				idx := (w + r*workers) % pages
				p, err := bp.Fetch(ids[idx])
				if err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				if hi := binary.LittleEndian.Uint64(p.Payload()) >> 32; hi != uint64(idx) {
					t.Errorf("page %d contains data for %d", idx, hi)
					bp.Unpin(ids[idx], false)
					return
				}
				dirty := false
				if w < 2 { // two writers bump counters in disjoint pages
					lo := binary.LittleEndian.Uint64(p.Payload()) & 0xFFFFFFFF
					binary.LittleEndian.PutUint64(p.Payload(), uint64(idx)<<32|(lo+1))
					dirty = true
				}
				bp.Unpin(ids[idx], dirty)
			}
		}(w)
	}
	wg.Wait()
	// Phase 2: readers race a checkpointer. FlushAll takes every shard
	// lock in order while Fetch/Unpin/evictions proceed between its
	// runs; nothing mutates page bytes here (pages written back are
	// only read).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds/4; r++ {
				idx := (w + r*workers) % pages
				p, err := bp.Fetch(ids[idx])
				if err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				if hi := binary.LittleEndian.Uint64(p.Payload()) >> 32; hi != uint64(idx) {
					t.Errorf("page %d contains data for %d", idx, hi)
				}
				bp.Unpin(ids[idx], false)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := bp.FlushAll(); err != nil {
				t.Errorf("concurrent FlushAll: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if bp.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", bp.PinnedCount())
	}
	var total uint64
	for i, id := range ids {
		var p Page
		if err := fs.ReadPage(id, &p); err != nil {
			t.Fatal(err)
		}
		if hi := binary.LittleEndian.Uint64(p.Payload()) >> 32; hi != uint64(i) {
			t.Fatalf("page %d corrupted", i)
		}
		total += binary.LittleEndian.Uint64(p.Payload()) & 0xFFFFFFFF
	}
	if total != 2*rounds {
		t.Errorf("writer increments = %d, want %d", total, 2*rounds)
	}
}

package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// DoubleWriter makes in-place page writes atomic across crashes: before
// a batch of dirty pages is written to its home positions, the batch is
// first written sequentially to a side file and fsynced. If the process
// dies while the in-place writes are torn, recovery replays intact page
// images from the side file. (The technique is the classic double-write
// buffer; per-page CRCs detect the torn victims.)
//
// Side-file layout: a one-page header holding the batch page count and
// the page ids, followed by the page images.
//
// Stage and Clear serialize on an internal mutex: the sharded buffer
// pool can evict from different shards concurrently, and two
// interleaved stagings would corrupt the single side file.
type DoubleWriter struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

const dwMaxBatch = (PageSize - 8) / 4 // ids that fit in the header page

// OpenDoubleWriter opens (creating if needed) the side file.
func OpenDoubleWriter(path string) (*DoubleWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open double-write file %s: %w", path, err)
	}
	return &DoubleWriter{f: f, path: path}, nil
}

// Stage durably records the batch in the side file. Pages are sealed
// (checksummed) as a side effect, so the subsequent in-place writes are
// consistent with the staged images.
func (dw *DoubleWriter) Stage(pages []*Page) error {
	if len(pages) == 0 {
		return nil
	}
	dw.mu.Lock()
	defer dw.mu.Unlock()
	if len(pages) > dwMaxBatch {
		return fmt.Errorf("storage: double-write batch of %d exceeds max %d", len(pages), dwMaxBatch)
	}
	var hdr [PageSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(pages)))
	for i, p := range pages {
		binary.LittleEndian.PutUint32(hdr[8+4*i:], uint32(p.ID()))
	}
	if k, ferr := fpDWStage.CheckIO(PageSize); ferr != nil {
		// Simulated crash during staging: at most a torn header lands
		// in the side file; no home page has been touched yet, so
		// recovery must be able to ignore the partial batch.
		if k > 0 {
			dw.f.WriteAt(hdr[:k], 0)
		}
		return fmt.Errorf("storage: stage batch: %w", ferr)
	}
	for i, p := range pages {
		p.seal()
		if _, err := dw.f.WriteAt(p.data[:], int64(i+1)*PageSize); err != nil {
			return fmt.Errorf("storage: stage page %d: %w", p.ID(), err)
		}
	}
	if _, err := dw.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("storage: stage header: %w", err)
	}
	return dw.f.Sync()
}

// Clear marks the side file empty after the in-place writes have been
// synced.
func (dw *DoubleWriter) Clear() error {
	dw.mu.Lock()
	defer dw.mu.Unlock()
	if err := fpDWClear.Check(); err != nil {
		return err
	}
	var hdr [8]byte
	if _, err := dw.f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return dw.f.Sync()
}

// Recover restores any staged pages whose home copies are torn. It is
// called once on unclean open, before anything reads the main file.
func (dw *DoubleWriter) Recover(fs *FileStore) (restored int, err error) {
	var hdr [PageSize]byte
	n, err := dw.f.ReadAt(hdr[:], 0)
	if err != nil && n < 8 {
		return 0, nil // empty or fresh side file: nothing staged
	}
	count := int(binary.LittleEndian.Uint32(hdr[0:]))
	if count == 0 || count > dwMaxBatch {
		return 0, nil
	}
	for i := 0; i < count; i++ {
		id := PageID(binary.LittleEndian.Uint32(hdr[8+4*i:]))
		var staged Page
		staged.id = id
		if n, rerr := dw.f.ReadAt(staged.data[:], int64(i+1)*PageSize); rerr != nil {
			if n < PageSize && (errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF)) {
				// The side file ends before this image: the crash hit
				// during staging (a torn header write can record a
				// count with no images behind it). Staging never
				// completed, so no home page of this batch was
				// written and the home copies are intact.
				break
			}
			return restored, fmt.Errorf("storage: read staged page %d: %w", id, rerr)
		}
		if staged.verify() != nil {
			// The staging write itself was torn; the home copy is
			// still the old, intact version. Skip.
			continue
		}
		var home Page
		if rerr := fs.ReadPage(id, &home); rerr == nil {
			continue // home copy intact (ReadPage verifies the CRC)
		}
		if err := fs.WritePage(&staged); err != nil {
			return restored, fmt.Errorf("storage: restore page %d: %w", id, err)
		}
		restored++
	}
	if restored > 0 {
		if err := fs.f.Sync(); err != nil {
			return restored, err
		}
	}
	return restored, dw.Clear()
}

// Close closes the side file.
func (dw *DoubleWriter) Close() error { return dw.f.Close() }

// Package storage implements the on-disk substrate of an Ode database:
// a single paged file, slotted heap pages for variable-length records,
// and an LRU buffer pool with pin counts and write-ahead-log ordering.
//
// The 1989 paper assumes "a large, if not infinite, persistent store"
// without describing one (the prototype was in progress); this package
// is the concrete store the rest of the reproduction is built on.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageSize is the size of every page in the file. 4 KiB matches the
// hardware of the paper's era and today's filesystem block size.
const PageSize = 4096

// PageID identifies a page by its position in the file. Page 0 is the
// meta page; InvalidPage (0) therefore doubles as the nil page id for
// links between data pages.
type PageID uint32

// InvalidPage is the nil page id.
const InvalidPage PageID = 0

// PageType tags what a page stores.
type PageType uint8

// Page types.
const (
	TypeFree PageType = iota // on the free list
	TypeMeta                 // page 0
	TypeHeap                 // slotted records
	TypeBTreeLeaf
	TypeBTreeInternal
)

// Page header layout (bytes 0..pageHeaderSize):
//
//	[0:4)   page id (sanity check against torn relocation)
//	[4:12)  page LSN (WAL ordering)
//	[12:13) page type
//	[13:16) reserved
//	[16:20) CRC32C of payload (filled on write, checked on read)
const (
	offID          = 0
	offLSN         = 4
	offType        = 12
	offCRC         = 16
	PageHeaderSize = 20
)

// PayloadSize is the number of usable bytes per page after the header.
const PayloadSize = PageSize - PageHeaderSize

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a corrupted page.
var ErrChecksum = errors.New("storage: page checksum mismatch")

// Page is an in-memory page image. The buffer pool hands out *Page
// values pinned in frames; callers must not retain them past Unpin.
type Page struct {
	id   PageID
	data [PageSize]byte
}

// ID returns the page id.
func (p *Page) ID() PageID { return p.id }

// Type returns the page type tag.
func (p *Page) Type() PageType { return PageType(p.data[offType]) }

// SetType sets the page type tag.
func (p *Page) SetType(t PageType) { p.data[offType] = byte(t) }

// LSN returns the page LSN: the log sequence number of the last record
// describing a change to this page.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.data[offLSN:]) }

// SetLSN records the LSN of the latest change.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.data[offLSN:], lsn) }

// Payload returns the usable byte region of the page.
func (p *Page) Payload() []byte { return p.data[PageHeaderSize:] }

// seal writes the id and checksum prior to hitting disk.
func (p *Page) seal() {
	binary.LittleEndian.PutUint32(p.data[offID:], uint32(p.id))
	binary.LittleEndian.PutUint32(p.data[offCRC:], 0)
	crc := crc32.Checksum(p.data[PageHeaderSize:], crcTable)
	binary.LittleEndian.PutUint32(p.data[offCRC:], crc)
}

// verify checks the id and checksum after a read. A page of all zeroes
// (freshly allocated, never written) verifies trivially.
func (p *Page) verify() error {
	storedID := binary.LittleEndian.Uint32(p.data[offID:])
	storedCRC := binary.LittleEndian.Uint32(p.data[offCRC:])
	if storedID == 0 && storedCRC == 0 && p.Type() == TypeFree {
		return nil // never-written page
	}
	if storedID != uint32(p.id) {
		return fmt.Errorf("%w: page %d carries id %d", ErrChecksum, p.id, storedID)
	}
	crc := crc32.Checksum(p.data[PageHeaderSize:], crcTable)
	if crc != storedCRC {
		return fmt.Errorf("%w: page %d", ErrChecksum, p.id)
	}
	return nil
}

// reset zeroes the page content (keeping the id).
func (p *Page) reset() {
	p.data = [PageSize]byte{}
}

// Package trigger implements Ode triggers (paper, section 6): per-object
// activations of class-declared triggers, once-only and perpetual
// flavors, condition evaluation at the end of each transaction, and
// weakly-coupled action transactions — a firing schedules the action as
// an independent transaction that runs after (but not necessarily
// immediately after) the triggering transaction commits; if the
// triggering transaction aborts, its fired actions never run.
//
// Activations are durable: each is a persistent object of the reserved
// system class "__activation", so they ride the ordinary WAL/recovery
// machinery and survive restarts. The trigger id the paper's
// `trigger-id object-id->T(args)` syntax returns is the activation
// object's OID.
//
// As an extension (the paper's companion work on timed triggers), an
// activation may carry a deadline; ExpireBefore fires the trigger's
// timeout action for activations whose deadline passed without the
// condition becoming true.
package trigger

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ode/internal/core"
	"ode/internal/object"
	"ode/internal/obs"
	"ode/internal/txn"
)

// ActivationClassName is the reserved class holding trigger activations.
const ActivationClassName = "__activation"

// Sentinel errors.
var (
	// ErrNoTrigger is returned when the target's class declares no
	// trigger of the requested name.
	ErrNoTrigger = errors.New("trigger: class declares no such trigger")
	// ErrNotActivation is returned when a deactivation id does not name
	// an activation object.
	ErrNotActivation = errors.New("trigger: id does not name an activation")
)

// RegisterActivationClass adds the system activation class to a schema.
// The database layer calls it before opening the store so activation
// records decode everywhere.
func RegisterActivationClass(s *core.Schema) *core.Class {
	if c, ok := s.ClassNamed(ActivationClassName); ok {
		return c
	}
	return core.NewClass(ActivationClassName).
		Field("target", core.TAnyRef).
		Field("trigger", core.TString).
		Field("args", core.ArrayOfType(nil)).
		Field("perpetual", core.TBool).
		Field("active", core.TBool).
		Field("deadline", core.TInt). // unix nanoseconds; 0 = none
		Register(s)
}

// firing is a condition that came true in a (not yet committed)
// transaction.
type firing struct {
	activation  core.OID
	target      core.OID
	triggerName string
	class       *core.Class
	args        []core.Value
	timeout     bool // fire the timeout action instead of the action
}

// ActionError records a failed (aborted) trigger-action transaction.
type ActionError struct {
	Activation core.OID
	Target     core.OID
	Trigger    string
	Err        error
}

func (e ActionError) Error() string {
	return fmt.Sprintf("trigger: action %s on @%d (activation @%d): %v", e.Trigger, e.Target, e.Activation, e.Err)
}

// Service wires trigger semantics into a transaction engine. Create it
// with NewService, which installs the engine hooks.
type Service struct {
	engine   *txn.Engine
	actClass *core.Class
	sync     bool // run actions inline in PostCommit (deterministic tests)
	met      *obs.TriggerMetrics

	mu       sync.Mutex
	byTarget map[core.OID]map[core.OID]bool // target -> activation oids
	pending  map[uint64][]firing            // txid -> fired this tx
	suppress map[uint64]core.OID            // action txid -> its own activation
	errs     []ActionError
	wg       sync.WaitGroup
}

// NewService installs trigger processing on the engine. If syncActions
// is true, fired actions run inline at commit (still as independent
// transactions); otherwise they run on background goroutines and
// Wait drains them.
func NewService(engine *txn.Engine, syncActions bool) (*Service, error) {
	schema := engine.Manager().Schema()
	actClass, ok := schema.ClassNamed(ActivationClassName)
	if !ok {
		return nil, fmt.Errorf("trigger: schema lacks %s (call RegisterActivationClass before opening)", ActivationClassName)
	}
	s := &Service{
		engine:   engine,
		actClass: actClass,
		sync:     syncActions,
		met:      &obs.TriggerMetrics{},
		byTarget: make(map[core.OID]map[core.OID]bool),
		pending:  make(map[uint64][]firing),
		suppress: make(map[uint64]core.OID),
	}
	if !engine.Manager().HasCluster(actClass) {
		if err := engine.Manager().CreateCluster(actClass); err != nil {
			return nil, err
		}
	}
	if err := s.loadActivations(); err != nil {
		return nil, err
	}
	engine.PreCommit = s.preCommit
	engine.PostCommit = s.postCommit
	engine.PostAbort = s.postAbort
	return s, nil
}

// SetMetrics attaches the trigger metric set; tm must be non-nil.
func (s *Service) SetMetrics(tm *obs.TriggerMetrics) { s.met = tm }

// loadActivations rebuilds the in-memory target index from the
// activation extent (after open or recovery).
func (s *Service) loadActivations() error {
	mgr := s.engine.Manager()
	return mgr.ScanCluster(s.actClass, func(oid core.OID) (bool, error) {
		o, _, err := mgr.Get(oid)
		if err != nil {
			return false, err
		}
		if target, ok := o.MustGet("target").AnyOID(); ok && o.MustGet("active").Bool() {
			s.indexActivation(target, oid)
		}
		return true, nil
	})
}

func (s *Service) indexActivation(target, act core.OID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.byTarget[target]
	if m == nil {
		m = make(map[core.OID]bool)
		s.byTarget[target] = m
	}
	m[act] = true
}

func (s *Service) unindexActivation(target, act core.OID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.byTarget[target]; m != nil {
		delete(m, act)
		if len(m) == 0 {
			delete(s.byTarget, target)
		}
	}
}

// Activate arms trigger `name` on the target object with the given
// arguments, inside tx (the paper's `trigger-id = object->T(args)`).
// The returned OID is the trigger id used for deactivation.
func (s *Service) Activate(tx *txn.Tx, target core.OID, name string, args ...core.Value) (core.OID, error) {
	return s.activate(tx, target, name, 0, args)
}

// ActivateWithin arms a timed trigger: if the condition has not fired
// by the deadline, ExpireBefore fires the trigger's timeout action (or
// just deactivates it when the trigger has none).
func (s *Service) ActivateWithin(tx *txn.Tx, target core.OID, name string, deadline time.Time, args ...core.Value) (core.OID, error) {
	return s.activate(tx, target, name, deadline.UnixNano(), args)
}

func (s *Service) activate(tx *txn.Tx, target core.OID, name string, deadline int64, args []core.Value) (core.OID, error) {
	targetObj, err := tx.Deref(target)
	if err != nil {
		return core.NilOID, err
	}
	def, ok := targetObj.Class().TriggerNamed(name)
	if !ok {
		return core.NilOID, fmt.Errorf("%w: %s::%s", ErrNoTrigger, targetObj.Class().Name, name)
	}
	if len(def.Params) != len(args) {
		return core.NilOID, fmt.Errorf("trigger: %s::%s expects %d arguments, got %d",
			targetObj.Class().Name, name, len(def.Params), len(args))
	}
	act := core.NewObject(s.actClass)
	act.MustSet("target", core.Ref(target))
	act.MustSet("trigger", core.Str(name))
	arr := core.NewArray(args...)
	act.MustSet("args", core.ArrayOf(arr))
	act.MustSet("perpetual", core.Bool(def.Perpetual))
	act.MustSet("active", core.Bool(true))
	act.MustSet("deadline", core.Int(deadline))
	oid, err := tx.PNew(s.actClass, act)
	if err == nil {
		s.met.Activations.Inc()
	}
	return oid, err
}

// Deactivate disarms a trigger activation by id, inside tx (the paper's
// explicit deactivation).
func (s *Service) Deactivate(tx *txn.Tx, id core.OID) error {
	o, err := tx.Deref(id)
	if err != nil {
		return err
	}
	if o.Class() != s.actClass {
		return fmt.Errorf("%w: @%d is a %s", ErrNotActivation, id, o.Class().Name)
	}
	return tx.PDelete(id)
}

// DeactivateAll disarms every activation of the named trigger on the
// target (the paper's `trigger object-id->T(arguments)` deactivation
// form).
func (s *Service) DeactivateAll(tx *txn.Tx, target core.OID, name string) error {
	s.mu.Lock()
	var acts []core.OID
	for act := range s.byTarget[target] {
		acts = append(acts, act)
	}
	s.mu.Unlock()
	for _, act := range acts {
		o, err := tx.Deref(act)
		if err != nil {
			continue // racing deactivation
		}
		if o.MustGet("trigger").Str() == name {
			if err := tx.PDelete(act); err != nil {
				return err
			}
		}
	}
	return nil
}

// ActiveOn lists the active activation ids on a target (diagnostics).
func (s *Service) ActiveOn(target core.OID) []core.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []core.OID
	for act := range s.byTarget[target] {
		out = append(out, act)
	}
	return out
}

// Errors returns (and clears) the errors of failed action transactions.
func (s *Service) Errors() []ActionError {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.errs
	s.errs = nil
	return out
}

// Wait blocks until all scheduled (asynchronous) trigger actions have
// finished, including actions those actions fired in turn.
func (s *Service) Wait() { s.wg.Wait() }

// preCommit evaluates trigger conditions over the transaction's write
// set — "conceptually, trigger conditions are evaluated at the end of
// each transaction". Fired once-only activations are deactivated as
// part of the same transaction.
func (s *Service) preCommit(tx *txn.Tx) error {
	// Candidate activations: those indexed on touched targets, plus
	// activation objects created by this very transaction (the
	// activating transaction evaluates its own activations too).
	writeSet := tx.WriteSet()
	seen := make(map[core.OID]bool)
	var candidates []core.OID
	s.mu.Lock()
	for _, oid := range writeSet {
		for act := range s.byTarget[oid] {
			if !seen[act] {
				seen[act] = true
				candidates = append(candidates, act)
			}
		}
	}
	s.mu.Unlock()
	for _, oid := range writeSet {
		if tx.Created(oid) && !tx.IsDeleted(oid) && !seen[oid] {
			o, err := tx.Deref(oid)
			if err == nil && o.Class() == s.actClass {
				seen[oid] = true
				candidates = append(candidates, oid)
			}
		}
	}
	s.mu.Lock()
	suppressed := s.suppress[tx.ID()]
	s.mu.Unlock()
	var fired []firing
	for _, actOID := range candidates {
		if tx.IsDeleted(actOID) {
			continue
		}
		if actOID == suppressed {
			// A perpetual activation never re-evaluates inside the
			// action transaction it spawned itself; otherwise an action
			// that leaves the condition true would fire forever.
			continue
		}
		act, err := tx.Deref(actOID)
		if err != nil {
			continue // concurrently removed
		}
		if !act.MustGet("active").Bool() {
			continue
		}
		target, ok := act.MustGet("target").AnyOID()
		if !ok || tx.IsDeleted(target) {
			continue
		}
		targetObj, err := tx.Deref(target)
		if err != nil {
			continue
		}
		name := act.MustGet("trigger").Str()
		def, ok := targetObj.Class().TriggerNamed(name)
		if !ok {
			continue
		}
		args := act.MustGet("args").Array().Elems()
		cond, err := def.Cond(tx, targetObj, args)
		if err != nil {
			return fmt.Errorf("trigger: condition %s::%s on @%d: %w", targetObj.Class().Name, name, target, err)
		}
		if !cond {
			continue
		}
		if !def.Perpetual {
			// Once-only: the firing deactivates the trigger within the
			// triggering transaction.
			act.MustSet("active", core.Bool(false))
			if err := tx.Update(actOID, act); err != nil {
				return err
			}
		}
		fired = append(fired, firing{
			activation:  actOID,
			target:      target,
			triggerName: name,
			class:       targetObj.Class(),
			args:        args,
		})
	}
	if len(fired) > 0 {
		s.mu.Lock()
		s.pending[tx.ID()] = fired
		s.mu.Unlock()
	}
	return nil
}

// postCommit maintains the activation index and schedules the
// transaction's fired actions as independent transactions.
func (s *Service) postCommit(tx *txn.Tx) {
	// Index maintenance for created/deleted/updated activation objects.
	// The transaction's buffered write images are the committed state,
	// so non-activation writes (the vast majority) are filtered on the
	// buffered class alone — no store reads on the commit path.
	for _, oid := range tx.WriteSet() {
		if tx.IsDeleted(oid) {
			// Was it an activation? The index holds it if so.
			s.mu.Lock()
			for target, m := range s.byTarget {
				if m[oid] {
					delete(m, oid)
					if len(m) == 0 {
						delete(s.byTarget, target)
					}
					break
				}
			}
			s.mu.Unlock()
			continue
		}
		o := tx.WrittenObject(oid)
		if o == nil || o.Class() != s.actClass {
			continue
		}
		target, ok := o.MustGet("target").AnyOID()
		if !ok {
			continue
		}
		if o.MustGet("active").Bool() {
			s.indexActivation(target, oid)
		} else {
			s.unindexActivation(target, oid)
		}
	}
	s.mu.Lock()
	fired := s.pending[tx.ID()]
	delete(s.pending, tx.ID())
	s.mu.Unlock()
	for _, f := range fired {
		s.met.Firings.Inc()
		s.schedule(f)
	}
}

// postAbort drops the aborted transaction's fired set: "If the
// triggering transaction is aborted, the trigger actions generated by
// it are aborted."
func (s *Service) postAbort(tx *txn.Tx) {
	s.mu.Lock()
	delete(s.pending, tx.ID())
	s.mu.Unlock()
}

// schedule runs a fired action as its own transaction (weak coupling).
func (s *Service) schedule(f firing) {
	run := func() {
		if err := s.runAction(f); err != nil {
			s.met.ActionErrors.Inc()
			s.mu.Lock()
			s.errs = append(s.errs, ActionError{
				Activation: f.activation,
				Target:     f.target,
				Trigger:    f.triggerName,
				Err:        err,
			})
			s.mu.Unlock()
		}
	}
	if s.sync {
		run()
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		run()
	}()
}

func (s *Service) runAction(f firing) error {
	def, ok := f.class.TriggerNamed(f.triggerName)
	if !ok {
		return fmt.Errorf("%w: %s::%s", ErrNoTrigger, f.class.Name, f.triggerName)
	}
	action := def.Action
	if f.timeout {
		if def.TimeoutAction == nil {
			return nil
		}
		action = def.TimeoutAction
	}
	atx := s.engine.Begin()
	s.mu.Lock()
	s.suppress[atx.ID()] = f.activation
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.suppress, atx.ID())
		s.mu.Unlock()
	}()
	targetObj, err := atx.Deref(f.target)
	if err != nil {
		atx.Abort()
		if errors.Is(err, object.ErrNoObject) {
			return nil // target deleted between firing and action: drop
		}
		return err
	}
	if err := action(atx, targetObj, f.target, f.args); err != nil {
		atx.Abort()
		return err
	}
	return atx.Commit()
}

// ExpireBefore fires timeout actions for active timed activations whose
// deadline is before now, deactivating them. It returns how many
// expired. The database layer (or a test) drives the clock.
func (s *Service) ExpireBefore(now time.Time) (int, error) {
	mgr := s.engine.Manager()
	var expired []core.OID
	err := mgr.ScanCluster(s.actClass, func(oid core.OID) (bool, error) {
		o, _, err := mgr.Get(oid)
		if err != nil {
			return false, err
		}
		d := o.MustGet("deadline").Int()
		if d != 0 && d < now.UnixNano() && o.MustGet("active").Bool() {
			expired = append(expired, oid)
		}
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, actOID := range expired {
		tx := s.engine.Begin()
		act, err := tx.Deref(actOID)
		if err != nil {
			tx.Abort()
			continue
		}
		if !act.MustGet("active").Bool() {
			tx.Abort()
			continue
		}
		act.MustSet("active", core.Bool(false))
		if err := tx.Update(actOID, act); err != nil {
			tx.Abort()
			return n, err
		}
		target, _ := act.MustGet("target").AnyOID()
		targetObj, err := tx.Deref(target)
		if err != nil {
			tx.Abort()
			continue
		}
		name := act.MustGet("trigger").Str()
		if err := tx.Commit(); err != nil {
			return n, err
		}
		n++
		s.met.Timeouts.Inc()
		s.schedule(firing{
			activation:  actOID,
			target:      target,
			triggerName: name,
			class:       targetObj.Class(),
			args:        act.MustGet("args").Array().Elems(),
			timeout:     true,
		})
	}
	return n, nil
}

package trigger

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"ode/internal/core"
	"ode/internal/object"
	"ode/internal/storage"
	"ode/internal/txn"
	"ode/internal/wal"
)

// fixture builds the paper's reorder scenario: a stockitem whose
// "reorder" trigger fires when quantity falls below a threshold passed
// at activation; the action raises quantity by a fixed lot and records
// the reorder in a counter field.
type fixture struct {
	engine *txn.Engine
	svc    *Service
	item   *core.Class
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	schema := core.NewSchema()
	item := core.NewClass("stockitem").
		Field("name", core.TString).
		Field("qty", core.TInt).
		Field("reorders", core.TInt).
		Field("timeouts", core.TInt).
		Trigger(&core.TriggerDef{
			Name:   "reorder",
			Params: []core.Param{{Name: "threshold", Type: core.TInt}},
			Src:    "qty < threshold ==> qty += 100",
			Cond: func(_ core.Store, self *core.Object, args []core.Value) (bool, error) {
				return self.MustGet("qty").Int() < args[0].Int(), nil
			},
			Action: func(st core.Store, self *core.Object, oid core.OID, _ []core.Value) error {
				self.MustSet("qty", core.Int(self.MustGet("qty").Int()+100))
				self.MustSet("reorders", core.Int(self.MustGet("reorders").Int()+1))
				return st.Update(oid, self)
			},
			TimeoutAction: func(st core.Store, self *core.Object, oid core.OID, _ []core.Value) error {
				self.MustSet("timeouts", core.Int(self.MustGet("timeouts").Int()+1))
				return st.Update(oid, self)
			},
		}).
		Trigger(&core.TriggerDef{
			Name:      "watch",
			Perpetual: true,
			Src:       "perpetual: qty > 1000 ==> reorders++",
			Cond: func(_ core.Store, self *core.Object, _ []core.Value) (bool, error) {
				return self.MustGet("qty").Int() > 1000, nil
			},
			Action: func(st core.Store, self *core.Object, oid core.OID, _ []core.Value) error {
				self.MustSet("reorders", core.Int(self.MustGet("reorders").Int()+1))
				return st.Update(oid, self)
			},
		}).
		Register(schema)
	RegisterActivationClass(schema)

	dir := t.TempDir()
	fs, err := storage.CreateFile(filepath.Join(dir, "t.odb"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	pool := storage.NewPool(fs, 128, nil, nil)
	mgr, err := object.Create(schema, fs, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.CreateCluster(item); err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(filepath.Join(dir, "t.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	engine := txn.NewEngine(mgr, log)
	svc, err := NewService(engine, true) // synchronous actions: deterministic
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: engine, svc: svc, item: item}
}

func (f *fixture) newItem(t testing.TB, name string, qty int64) core.OID {
	t.Helper()
	tx := f.engine.Begin()
	o := core.NewObject(f.item)
	o.MustSet("name", core.Str(name))
	o.MustSet("qty", core.Int(qty))
	oid, err := tx.PNew(f.item, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return oid
}

func (f *fixture) setQty(t testing.TB, oid core.OID, qty int64) {
	t.Helper()
	tx := f.engine.Begin()
	o, err := tx.Deref(oid)
	if err != nil {
		t.Fatal(err)
	}
	o.MustSet("qty", core.Int(qty))
	if err := tx.Update(oid, o); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) get(t testing.TB, oid core.OID, field string) int64 {
	t.Helper()
	tx := f.engine.Begin()
	defer tx.Abort()
	o, err := tx.Deref(oid)
	if err != nil {
		t.Fatal(err)
	}
	return o.MustGet(field).Int()
}

func TestOnceOnlyTriggerFiresOnceAndDeactivates(t *testing.T) {
	f := newFixture(t)
	oid := f.newItem(t, "dram", 50)

	tx := f.engine.Begin()
	id, err := f.svc.Activate(tx, oid, "reorder", core.Int(20))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(f.svc.ActiveOn(oid)) != 1 {
		t.Fatal("activation not indexed")
	}

	// Condition false: nothing fires.
	f.setQty(t, oid, 30)
	if got := f.get(t, oid, "reorders"); got != 0 {
		t.Fatalf("fired early: reorders = %d", got)
	}
	// Condition true: fires once, action restocks (+100).
	f.setQty(t, oid, 10)
	if got := f.get(t, oid, "reorders"); got != 1 {
		t.Fatalf("reorders = %d, want 1", got)
	}
	if got := f.get(t, oid, "qty"); got != 110 {
		t.Fatalf("qty = %d, want 110 (restocked)", got)
	}
	// Once-only: deactivated; a further drop does not fire.
	f.setQty(t, oid, 5)
	if got := f.get(t, oid, "reorders"); got != 1 {
		t.Fatalf("once-only trigger fired again: %d", got)
	}
	if acts := f.svc.ActiveOn(oid); len(acts) != 0 {
		t.Errorf("activation still indexed: %v", acts)
	}
	_ = id
}

func TestPerpetualTriggerKeepsFiring(t *testing.T) {
	f := newFixture(t)
	oid := f.newItem(t, "x", 1)
	tx := f.engine.Begin()
	if _, err := f.svc.Activate(tx, oid, "watch"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	f.setQty(t, oid, 2000) // fires
	f.setQty(t, oid, 3000) // fires again
	if got := f.get(t, oid, "reorders"); got != 2 {
		t.Fatalf("perpetual trigger fired %d times, want 2", got)
	}
	if len(f.svc.ActiveOn(oid)) != 1 {
		t.Error("perpetual activation dropped")
	}
}

func TestActivationEvaluatedInActivatingTx(t *testing.T) {
	// The condition is already true when the trigger is activated: it
	// fires at the end of the activating transaction.
	f := newFixture(t)
	oid := f.newItem(t, "y", 5)
	tx := f.engine.Begin()
	if _, err := f.svc.Activate(tx, oid, "reorder", core.Int(20)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := f.get(t, oid, "reorders"); got != 1 {
		t.Fatalf("reorders = %d, want 1 (fired at activation commit)", got)
	}
}

func TestAbortCancelsFiredActions(t *testing.T) {
	f := newFixture(t)
	oid := f.newItem(t, "z", 50)
	tx := f.engine.Begin()
	f.svc.Activate(tx, oid, "reorder", core.Int(20))
	tx.Commit()

	// Drop qty below threshold but abort: no action may run.
	tx2 := f.engine.Begin()
	o, _ := tx2.Deref(oid)
	o.MustSet("qty", core.Int(1))
	tx2.Update(oid, o)
	tx2.Abort()
	f.svc.Wait()
	if got := f.get(t, oid, "reorders"); got != 0 {
		t.Fatalf("aborted transaction fired a trigger: %d", got)
	}
	if got := f.get(t, oid, "qty"); got != 50 {
		t.Fatalf("qty = %d", got)
	}
	// The activation must still be armed.
	f.setQty(t, oid, 2)
	if got := f.get(t, oid, "reorders"); got != 1 {
		t.Fatalf("trigger lost after aborted firing attempt: %d", got)
	}
}

func TestExplicitDeactivation(t *testing.T) {
	f := newFixture(t)
	oid := f.newItem(t, "d", 50)
	tx := f.engine.Begin()
	id, _ := f.svc.Activate(tx, oid, "reorder", core.Int(20))
	tx.Commit()

	tx2 := f.engine.Begin()
	if err := f.svc.Deactivate(tx2, id); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	f.setQty(t, oid, 1)
	if got := f.get(t, oid, "reorders"); got != 0 {
		t.Fatalf("deactivated trigger fired: %d", got)
	}
	// Deactivating a non-activation object errs.
	tx3 := f.engine.Begin()
	defer tx3.Abort()
	if err := f.svc.Deactivate(tx3, oid); !errors.Is(err, ErrNotActivation) {
		t.Errorf("Deactivate(item) = %v", err)
	}
}

func TestDeactivateAllByName(t *testing.T) {
	f := newFixture(t)
	oid := f.newItem(t, "da", 50)
	tx := f.engine.Begin()
	f.svc.Activate(tx, oid, "reorder", core.Int(20))
	f.svc.Activate(tx, oid, "reorder", core.Int(30))
	f.svc.Activate(tx, oid, "watch")
	tx.Commit()
	if n := len(f.svc.ActiveOn(oid)); n != 3 {
		t.Fatalf("activations = %d", n)
	}
	tx2 := f.engine.Begin()
	if err := f.svc.DeactivateAll(tx2, oid, "reorder"); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if n := len(f.svc.ActiveOn(oid)); n != 1 {
		t.Fatalf("after DeactivateAll: %d activations, want 1 (watch)", n)
	}
}

func TestMultipleActivationsWithDifferentArgs(t *testing.T) {
	// "There can be more than one activation of a trigger in effect."
	f := newFixture(t)
	oid := f.newItem(t, "m", 100)
	tx := f.engine.Begin()
	f.svc.Activate(tx, oid, "reorder", core.Int(20))
	f.svc.Activate(tx, oid, "reorder", core.Int(50))
	tx.Commit()

	// qty 40: only the threshold-50 activation fires.
	f.setQty(t, oid, 40)
	if got := f.get(t, oid, "reorders"); got != 1 {
		t.Fatalf("reorders = %d, want 1", got)
	}
	if n := len(f.svc.ActiveOn(oid)); n != 1 {
		t.Fatalf("remaining activations = %d, want 1", n)
	}
	// qty 10 (after restock the qty is 140; drop): threshold-20 fires.
	f.setQty(t, oid, 10)
	if got := f.get(t, oid, "reorders"); got != 2 {
		t.Fatalf("reorders = %d, want 2", got)
	}
}

func TestCascadingTriggers(t *testing.T) {
	// An action transaction can itself fire triggers: the reorder
	// action raises qty to 100+, firing a perpetual watch if qty > 1000.
	f := newFixture(t)
	oid := f.newItem(t, "c", 950)
	tx := f.engine.Begin()
	f.svc.Activate(tx, oid, "watch")
	f.svc.Activate(tx, oid, "reorder", core.Int(960))
	// Activation tx evaluates: qty 950 < 960 -> reorder fires at commit,
	// action sets qty 1050 -> watch fires on the action tx -> +1
	// reorder count.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	f.svc.Wait()
	if got := f.get(t, oid, "qty"); got != 1050 {
		t.Fatalf("qty = %d, want 1050", got)
	}
	// reorders: 1 (reorder action) + 1 (watch fired by action tx) = 2.
	if got := f.get(t, oid, "reorders"); got != 2 {
		t.Fatalf("reorders = %d, want 2 (cascade)", got)
	}
}

func TestActivationUnknownTriggerOrBadArity(t *testing.T) {
	f := newFixture(t)
	oid := f.newItem(t, "e", 1)
	tx := f.engine.Begin()
	defer tx.Abort()
	if _, err := f.svc.Activate(tx, oid, "nope"); !errors.Is(err, ErrNoTrigger) {
		t.Errorf("unknown trigger: %v", err)
	}
	if _, err := f.svc.Activate(tx, oid, "reorder"); err == nil {
		t.Error("missing argument accepted")
	}
}

func TestActivationsSurviveReopen(t *testing.T) {
	schemaFn := func() (*core.Schema, *core.Class) {
		schema := core.NewSchema()
		item := core.NewClass("stockitem").
			Field("name", core.TString).
			Field("qty", core.TInt).
			Field("reorders", core.TInt).
			Field("timeouts", core.TInt).
			Trigger(&core.TriggerDef{
				Name:   "reorder",
				Params: []core.Param{{Name: "threshold", Type: core.TInt}},
				Cond: func(_ core.Store, self *core.Object, args []core.Value) (bool, error) {
					return self.MustGet("qty").Int() < args[0].Int(), nil
				},
				Action: func(st core.Store, self *core.Object, oid core.OID, _ []core.Value) error {
					self.MustSet("reorders", core.Int(self.MustGet("reorders").Int()+1))
					return st.Update(oid, self)
				},
			}).
			Register(schema)
		RegisterActivationClass(schema)
		return schema, item
	}
	dir := t.TempDir()
	schema, item := schemaFn()
	fs, _ := storage.CreateFile(filepath.Join(dir, "p.odb"))
	pool := storage.NewPool(fs, 128, nil, nil)
	mgr, _ := object.Create(schema, fs, pool)
	mgr.CreateCluster(item)
	log, _ := wal.Open(filepath.Join(dir, "p.wal"))
	engine := txn.NewEngine(mgr, log)
	svc, err := NewService(engine, true)
	if err != nil {
		t.Fatal(err)
	}
	tx := engine.Begin()
	o := core.NewObject(item)
	o.MustSet("name", core.Str("i"))
	o.MustSet("qty", core.Int(100))
	oid, _ := tx.PNew(item, o)
	if _, err := svc.Activate(tx, oid, "reorder", core.Int(50)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	mgr.Checkpoint(true)
	fs.Close()
	log.Close()

	// Reopen: the activation must be rediscovered and functional.
	schema2, item2 := schemaFn()
	fs2, err := storage.OpenFile(filepath.Join(dir, "p.odb"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	pool2 := storage.NewPool(fs2, 128, nil, nil)
	mgr2, err := object.Open(schema2, fs2, pool2)
	if err != nil {
		t.Fatal(err)
	}
	log2, _ := wal.Open(filepath.Join(dir, "p.wal"))
	defer log2.Close()
	engine2 := txn.NewEngine(mgr2, log2)
	svc2, err := NewService(engine2, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(svc2.ActiveOn(oid)); n != 1 {
		t.Fatalf("activations after reopen = %d", n)
	}
	tx2 := engine2.Begin()
	io, _ := tx2.Deref(oid)
	io.MustSet("qty", core.Int(10))
	tx2.Update(oid, io)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	svc2.Wait()
	tx3 := engine2.Begin()
	defer tx3.Abort()
	got, _ := tx3.Deref(oid)
	if got.MustGet("reorders").Int() != 1 {
		t.Fatalf("trigger did not fire after reopen: %d", got.MustGet("reorders").Int())
	}
	_ = item2
}

func TestTimedTriggerExpiry(t *testing.T) {
	f := newFixture(t)
	oid := f.newItem(t, "timed", 100)
	tx := f.engine.Begin()
	deadline := time.Now().Add(-time.Second) // already past
	if _, err := f.svc.ActivateWithin(tx, oid, "reorder", deadline, core.Int(20)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	n, err := f.svc.ExpireBefore(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	f.svc.Wait()
	if got := f.get(t, oid, "timeouts"); got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
	// Expired activation is deactivated: condition can no longer fire.
	f.setQty(t, oid, 1)
	if got := f.get(t, oid, "reorders"); got != 0 {
		t.Fatalf("expired trigger fired: %d", got)
	}
	// Second expiry pass finds nothing.
	if n, _ := f.svc.ExpireBefore(time.Now()); n != 0 {
		t.Errorf("second expiry = %d", n)
	}
}

func TestActionErrorsAreReported(t *testing.T) {
	schema := core.NewSchema()
	item := core.NewClass("bomb").
		Field("n", core.TInt).
		Trigger(&core.TriggerDef{
			Name: "boom",
			Cond: func(_ core.Store, self *core.Object, _ []core.Value) (bool, error) {
				return self.MustGet("n").Int() > 0, nil
			},
			Action: func(core.Store, *core.Object, core.OID, []core.Value) error {
				return fmt.Errorf("kaboom")
			},
		}).
		Register(schema)
	RegisterActivationClass(schema)
	dir := t.TempDir()
	fs, _ := storage.CreateFile(filepath.Join(dir, "b.odb"))
	defer fs.Close()
	pool := storage.NewPool(fs, 64, nil, nil)
	mgr, _ := object.Create(schema, fs, pool)
	mgr.CreateCluster(item)
	log, _ := wal.Open(filepath.Join(dir, "b.wal"))
	defer log.Close()
	engine := txn.NewEngine(mgr, log)
	svc, _ := NewService(engine, true)

	tx := engine.Begin()
	o := core.NewObject(item)
	o.MustSet("n", core.Int(1))
	oid, _ := tx.PNew(item, o)
	svc.Activate(tx, oid, "boom")
	tx.Commit()
	svc.Wait()
	errs := svc.Errors()
	if len(errs) != 1 || errs[0].Trigger != "boom" {
		t.Fatalf("Errors = %v", errs)
	}
	if len(svc.Errors()) != 0 {
		t.Error("Errors did not clear")
	}
}

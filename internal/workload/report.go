package workload

import (
	"encoding/json"
	"fmt"
	"time"

	"ode/internal/obs"
)

// Report is the machine-readable result of one workload run. Field
// order is load-bearing: ci/workload_gate.sh scans the marshaled JSON
// line-by-line and relies on "workload" and "mode" appearing before
// "ops_per_sec" (TestReportFieldOrder pins this).
type Report struct {
	Workload  string           `json:"workload"`
	Mode      string           `json:"mode"`
	Seed      int64            `json:"seed"`
	Workers   int              `json:"workers"`
	Short     bool             `json:"short,omitempty"`
	Ops       int64            `json:"ops"`
	NsTotal   int64            `json:"ns_total"`
	NsPerOp   int64            `json:"ns_per_op"`
	OpsPerSec float64          `json:"ops_per_sec"`
	OpCounts  map[string]int64 `json:"op_counts"`
	Latency   LatencySummary   `json:"latency"`
	Counters  map[string]int64 `json:"counters,omitempty"`
}

// LatencySummary condenses the run's obs.Histogram. The quantiles are
// bucket upper bounds (the histogram is fixed-bucket), so they
// overestimate by at most one bucket width; samples past the last bound
// clamp to it.
type LatencySummary struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P90Ns  int64  `json:"p90_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
}

// report assembles the Report after a run.
func (r *runner) report(name string, elapsed time.Duration, counters map[string]int64) *Report {
	ops := int64(r.ops.Load())
	rep := &Report{
		Workload: name,
		Mode:     r.store.Mode(),
		Seed:     r.cfg.Seed,
		Workers:  r.cfg.Workers,
		Short:    r.cfg.Short,
		Ops:      ops,
		NsTotal:  elapsed.Nanoseconds(),
		OpCounts: map[string]int64{},
		Latency:  summarize(r.hist.Snapshot()),
		Counters: counters,
	}
	for _, kind := range r.sortedKinds() {
		rep.OpCounts[kind] = r.opCounts[kind]
	}
	if ops > 0 {
		rep.NsPerOp = elapsed.Nanoseconds() / ops
		rep.OpsPerSec = float64(ops) / elapsed.Seconds()
	}
	return rep
}

// summarize reduces a histogram snapshot to the summary quantiles.
func summarize(s obs.HistogramSnapshot) LatencySummary {
	sum := LatencySummary{Count: s.Count, MeanNs: s.Mean().Nanoseconds()}
	if s.Count == 0 {
		return sum
	}
	sum.P50Ns = quantile(s, 0.50)
	sum.P90Ns = quantile(s, 0.90)
	sum.P99Ns = quantile(s, 0.99)
	for i := len(s.Buckets) - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			sum.MaxNs = boundNs(i)
			break
		}
	}
	return sum
}

// quantile returns the upper bound of the bucket holding the q-th
// sample.
func quantile(s obs.HistogramSnapshot, q float64) int64 {
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			return boundNs(i)
		}
	}
	return boundNs(len(s.Buckets) - 1)
}

// boundNs is the bucket's upper bound in nanoseconds; the overflow
// bucket clamps to the largest finite bound.
func boundNs(i int) int64 {
	if b := obs.BucketBound(i); b >= 0 {
		return b.Nanoseconds()
	}
	return obs.BucketBound(obs.NumHistBuckets - 2).Nanoseconds()
}

// EncodeReports marshals reports the way ode-bench writes them: a JSON
// array, indented, one trailing newline. The gate scripts and
// DecodeReports both consume exactly this shape.
func EncodeReports(reps []*Report) ([]byte, error) {
	buf, err := json.MarshalIndent(reps, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// DecodeReports is the inverse of EncodeReports.
func DecodeReports(data []byte) ([]*Report, error) {
	var reps []*Report
	if err := json.Unmarshal(data, &reps); err != nil {
		return nil, fmt.Errorf("workload report: %w", err)
	}
	return reps, nil
}

package workload

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"ode/client"
	"ode/internal/bench"
	"ode/internal/server"
)

func shortCfg(seed int64) Config {
	return Config{Seed: seed, Workers: 2, Short: true}
}

func runEmbedded(t *testing.T, wl *Workload, cfg Config) *Report {
	t.Helper()
	w, err := bench.NewWorld(wl.DBOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	rep, err := wl.Run(NewEmbeddedStore(w), cfg)
	if err != nil {
		t.Fatalf("%s: %v", wl.Name, err)
	}
	return rep
}

// TestMixesEmbeddedShort runs every registered mix at CI size and
// sanity-checks the report shape.
func TestMixesEmbeddedShort(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every mix; minutes in -short CI shards")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			wl, ok := Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) missing", name)
			}
			rep := runEmbedded(t, wl, shortCfg(1))
			if rep.Workload != name || rep.Mode != "embedded" {
				t.Fatalf("report header: %+v", rep)
			}
			if rep.Ops == 0 || len(rep.OpCounts) == 0 {
				t.Fatalf("%s: no ops recorded: %+v", name, rep)
			}
			if rep.Latency.Count == 0 || rep.Latency.P50Ns <= 0 {
				t.Fatalf("%s: empty latency summary: %+v", name, rep.Latency)
			}
			if rep.OpsPerSec <= 0 || rep.NsPerOp <= 0 {
				t.Fatalf("%s: no throughput: %+v", name, rep)
			}
		})
	}
}

// TestOpCountsDeterministic pins the acceptance requirement: the op
// counts of a seeded run are byte-reproducible.
func TestOpCountsDeterministic(t *testing.T) {
	for _, name := range []string{"bom", "points"} {
		wl, _ := Lookup(name)
		a := runEmbedded(t, wl, shortCfg(1))
		b := runEmbedded(t, wl, shortCfg(1))
		if !reflect.DeepEqual(a.OpCounts, b.OpCounts) || a.Ops != b.Ops {
			t.Fatalf("%s seed=1 not reproducible:\n%v\n%v", name, a.OpCounts, b.OpCounts)
		}
	}
}

// TestRemoteMatchesEmbedded runs the points mix embedded and through a
// loopback server; the op mix is a pure function of the seed, so the
// two reports must agree on every count.
func TestRemoteMatchesEmbedded(t *testing.T) {
	wl, _ := Lookup("points")
	cfg := shortCfg(7)
	emb := runEmbedded(t, wl, cfg)

	w, err := bench.NewWorld(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	srv := server.New(w.DB, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(nil)
	t.Cleanup(func() { srv.Close() })
	schema, cw := bench.Schema()
	c, err := client.Dial(addr.String(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	rem, err := wl.Run(NewRemoteStore(c, cw), cfg)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if rem.Mode != "remote" {
		t.Fatalf("mode = %q", rem.Mode)
	}
	if !reflect.DeepEqual(emb.OpCounts, rem.OpCounts) {
		t.Fatalf("op counts diverge across transports:\nembedded %v\nremote   %v",
			emb.OpCounts, rem.OpCounts)
	}
	if len(rem.Counters) == 0 {
		t.Fatal("remote report carries no server counter deltas")
	}
}

// TestTriggersRefusedRemotely pins the capability flag.
func TestTriggersRefusedRemotely(t *testing.T) {
	wl, _ := Lookup("triggers")
	_, cw := bench.Schema()
	if _, err := wl.Run(NewRemoteStore(nil, cw), shortCfg(1)); err == nil {
		t.Fatal("trigger mix ran remotely; it needs embedded activation")
	}
}

// TestChurn10xLargerThanRAM is the acceptance test for the
// larger-than-RAM scenario: the dataset dwarfs the pool, the run
// completes inside the fixed pool, and compaction reclaims the pages
// the mass delete left behind.
func TestChurn10xLargerThanRAM(t *testing.T) {
	wl, _ := Lookup("churn10x")
	cfg := shortCfg(1)
	opts := wl.DBOptions(cfg)
	w, err := bench.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	rep, err := wl.Run(NewEmbeddedStore(w), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pages := w.DB.Stats().Pages; int(pages) < 5*opts.PoolPages {
		t.Fatalf("dataset is not larger than RAM: %d pages vs %d pool frames", pages, opts.PoolPages)
	}
	if rep.Counters["storage.compactions"] != 2 {
		t.Fatalf("storage.compactions delta = %d, want 2 (counters: %v)",
			rep.Counters["storage.compactions"], rep.Counters)
	}
	if rep.Counters["storage.pages_reclaimed"] <= 0 {
		t.Fatalf("compaction reclaimed no pages: %v", rep.Counters)
	}
	if rep.OpCounts["delete"] == 0 || rep.OpCounts["insert"] == 0 {
		t.Fatalf("churn accounting empty: %v", rep.OpCounts)
	}
}

// TestReportRoundTrip pins the JSON report schema: encode → decode is
// lossless, so the committed baseline and the gate always speak the
// same format.
func TestReportRoundTrip(t *testing.T) {
	in := []*Report{{
		Workload: "points", Mode: "embedded", Seed: 1, Workers: 4, Short: true,
		Ops: 4000, NsTotal: 9e9, NsPerOp: 2250000, OpsPerSec: 444.4,
		OpCounts: map[string]int64{"deref.hot": 3200, "update": 310},
		Latency:  LatencySummary{Count: 4000, MeanNs: 8000, P50Ns: 4000, P90Ns: 16000, P99Ns: 64000, MaxNs: 256000},
		Counters: map[string]int64{"pool.hits": 12345},
	}}
	buf, err := EncodeReports(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeReports(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost data:\nin  %+v\nout %+v", in[0], out[0])
	}
}

// TestReportFieldOrder pins the marshaled field order the gate's
// line-oriented awk extraction depends on: "workload", then "mode",
// then "workers", then "ops_per_sec" — see ci/gate_lib.sh.
func TestReportFieldOrder(t *testing.T) {
	buf, err := json.Marshal(&Report{Workload: "x", Mode: "embedded", Workers: 4, OpCounts: map[string]int64{}})
	if err != nil {
		t.Fatal(err)
	}
	s := string(buf)
	order := []string{`"workload"`, `"mode"`, `"workers"`, `"ops"`, `"ops_per_sec"`, `"op_counts"`}
	last := -1
	for _, key := range order {
		i := strings.Index(s, key)
		if i < 0 {
			t.Fatalf("report JSON lost field %s: %s", key, s)
		}
		if i < last {
			t.Fatalf("field %s moved before its predecessor; ci/gate_lib.sh scans fields in order. JSON: %s", key, s)
		}
		last = i
	}
}

// TestWorkloadMetricsDocComplete mirrors the engine's registry-diff
// test for the per-run workload.* family: every name a runner's
// Registry builds must appear backticked in docs/OBSERVABILITY.md.
func TestWorkloadMetricsDocComplete(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read docs/OBSERVABILITY.md: %v", err)
	}
	text := string(doc)

	reg := (&runner{}).Registry()
	names := reg.Names()
	if len(names) == 0 {
		t.Fatal("runner.Registry registered nothing")
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "workload.") {
			t.Errorf("metric %q: workload metrics must live under workload.*", name)
		}
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("metric %q is not documented in docs/OBSERVABILITY.md", name)
		}
	}
}

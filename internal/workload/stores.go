package workload

import (
	"context"
	"encoding/json"
	"fmt"

	"ode"
	"ode/client"
	"ode/internal/bench"
)

// NewEmbeddedStore adapts a loaded bench world (its DB must be open)
// into a workload Store.
func NewEmbeddedStore(w *bench.World) Store {
	return &embeddedStore{w: w}
}

type embeddedStore struct{ w *bench.World }

func (s *embeddedStore) Mode() string        { return "embedded" }
func (s *embeddedStore) World() *bench.World { return s.w }
func (s *embeddedStore) DB() *ode.DB         { return s.w.DB }

func (s *embeddedStore) RunTx(fn func(Tx) error) error {
	return s.w.DB.RunTx(func(tx *ode.Tx) error { return fn(embeddedTx{tx}) })
}

func (s *embeddedStore) View(fn func(Tx) error) error {
	return s.w.DB.View(func(tx *ode.Tx) error { return fn(embeddedTx{tx}) })
}

func (s *embeddedStore) CounterSnapshot() (map[string]int64, error) {
	return flattenCounters(s.w.DB.MetricsRegistry().Snapshot()), nil
}

type embeddedTx struct{ tx *ode.Tx }

func (t embeddedTx) PNew(c *ode.Class, o *ode.Object) (ode.OID, error) { return t.tx.PNew(c, o) }
func (t embeddedTx) Deref(oid ode.OID) (*ode.Object, error)            { return t.tx.Deref(oid) }
func (t embeddedTx) Update(oid ode.OID, o *ode.Object) error           { return t.tx.Update(oid, o) }
func (t embeddedTx) PDelete(oid ode.OID) error                         { return t.tx.PDelete(oid) }
func (t embeddedTx) NewVersion(oid ode.OID) (ode.VRef, error)          { return t.tx.NewVersion(oid) }
func (t embeddedTx) DerefVersion(ref ode.VRef) (*ode.Object, error)    { return t.tx.DerefVersion(ref) }
func (t embeddedTx) DeleteVersion(ref ode.VRef) error                  { return t.tx.DeleteVersion(ref) }

func (t embeddedTx) Count(c *ode.Class, field string, min int64) (int, error) {
	return ode.Forall(t.tx, c).SuchThat(ode.Field(field).Ge(ode.Int(min))).Count()
}

// NewRemoteStore adapts a connected client into a workload Store. The
// world must come from bench.Schema() (class handles only; no DB) and
// its schema must be the one the client was dialed with.
func NewRemoteStore(c *client.Client, w *bench.World) Store {
	return &remoteStore{c: c, w: w, ctx: context.Background()}
}

type remoteStore struct {
	c   *client.Client
	w   *bench.World
	ctx context.Context
}

func (s *remoteStore) Mode() string        { return "remote" }
func (s *remoteStore) World() *bench.World { return s.w }
func (s *remoteStore) DB() *ode.DB         { return nil }

func (s *remoteStore) RunTx(fn func(Tx) error) error {
	return s.c.RunTx(s.ctx, func(tx *client.Tx) error { return fn(remoteTx{tx}) })
}

func (s *remoteStore) View(fn func(Tx) error) error {
	return s.c.View(s.ctx, func(tx *client.Tx) error { return fn(remoteTx{tx}) })
}

func (s *remoteStore) CounterSnapshot() (map[string]int64, error) {
	raw, err := s.c.MetricsJSON(s.ctx)
	if err != nil {
		return nil, err
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("decode server metrics: %w", err)
	}
	return flattenCounters(snap), nil
}

type remoteTx struct{ tx *client.Tx }

func (t remoteTx) PNew(c *ode.Class, o *ode.Object) (ode.OID, error) { return t.tx.PNew(c, o) }
func (t remoteTx) Deref(oid ode.OID) (*ode.Object, error)            { return t.tx.Deref(oid) }
func (t remoteTx) Update(oid ode.OID, o *ode.Object) error           { return t.tx.Update(oid, o) }
func (t remoteTx) PDelete(oid ode.OID) error                         { return t.tx.PDelete(oid) }
func (t remoteTx) NewVersion(oid ode.OID) (ode.VRef, error)          { return t.tx.NewVersion(oid) }
func (t remoteTx) DerefVersion(ref ode.VRef) (*ode.Object, error)    { return t.tx.DerefVersion(ref) }
func (t remoteTx) DeleteVersion(ref ode.VRef) error                  { return t.tx.DeleteVersion(ref) }

func (t remoteTx) Count(c *ode.Class, field string, min int64) (int, error) {
	return t.tx.Count(&client.Scan{Class: c, Field: field, Op: client.CmpGe, Value: ode.Int(min)})
}

// NewShardedStore adapts a shard-group router into a workload Store:
// point ops route by OID, scans scatter-gather, and multi-shard writes
// commit through 2PC. The world must come from bench.Schema().
func NewShardedStore(r *client.Sharded, w *bench.World) Store {
	return &shardedStore{r: r, w: w, ctx: context.Background()}
}

type shardedStore struct {
	r   *client.Sharded
	w   *bench.World
	ctx context.Context
}

func (s *shardedStore) Mode() string        { return fmt.Sprintf("sharded-%d", s.r.NumShards()) }
func (s *shardedStore) World() *bench.World { return s.w }
func (s *shardedStore) DB() *ode.DB         { return nil }

func (s *shardedStore) RunTx(fn func(Tx) error) error {
	return s.r.RunTx(s.ctx, func(tx *client.STx) error { return fn(shardedTx{tx}) })
}

func (s *shardedStore) View(fn func(Tx) error) error {
	return s.r.View(s.ctx, func(tx *client.STx) error { return fn(shardedTx{tx}) })
}

// CounterSnapshot sums the scalar metrics across all shards, so
// counter-delta columns report group-wide totals.
func (s *shardedStore) CounterSnapshot() (map[string]int64, error) {
	total := make(map[string]int64)
	for i := 0; i < s.r.NumShards(); i++ {
		raw, err := s.r.Shard(i).MetricsJSON(s.ctx)
		if err != nil {
			return nil, err
		}
		var snap map[string]any
		if err := json.Unmarshal(raw, &snap); err != nil {
			return nil, fmt.Errorf("decode shard %d metrics: %w", i, err)
		}
		for name, v := range flattenCounters(snap) {
			total[name] += v
		}
	}
	return total, nil
}

type shardedTx struct{ tx *client.STx }

func (t shardedTx) PNew(c *ode.Class, o *ode.Object) (ode.OID, error) { return t.tx.PNew(c, o) }
func (t shardedTx) Deref(oid ode.OID) (*ode.Object, error)            { return t.tx.Deref(oid) }
func (t shardedTx) Update(oid ode.OID, o *ode.Object) error           { return t.tx.Update(oid, o) }
func (t shardedTx) PDelete(oid ode.OID) error                         { return t.tx.PDelete(oid) }
func (t shardedTx) NewVersion(oid ode.OID) (ode.VRef, error)          { return t.tx.NewVersion(oid) }
func (t shardedTx) DerefVersion(ref ode.VRef) (*ode.Object, error)    { return t.tx.DerefVersion(ref) }
func (t shardedTx) DeleteVersion(ref ode.VRef) error                  { return t.tx.DeleteVersion(ref) }

func (t shardedTx) Count(c *ode.Class, field string, min int64) (int, error) {
	return t.tx.Count(&client.Scan{Class: c, Field: field, Op: client.CmpGe, Value: ode.Int(min)})
}

// flattenCounters keeps the scalar numeric metrics of a registry
// snapshot (histogram snapshots and other structured values are
// dropped): the common currency of the embedded registry (uint64 /
// int64 counters and gauges) and the server's metrics JSON (float64
// after decoding).
func flattenCounters(snap map[string]any) map[string]int64 {
	out := make(map[string]int64, len(snap))
	for name, v := range snap {
		switch n := v.(type) {
		case uint64:
			out[name] = int64(n)
		case int64:
			out[name] = n
		case int:
			out[name] = int64(n)
		case float64:
			out[name] = int64(n)
		}
	}
	return out
}

// Package workload is the macro-benchmark suite: deterministic, seeded,
// OO-bench-style mixed workloads that exercise the engine the way the
// clustering literature says object bases are used — hot/cold skewed
// point derefs, pointer-chasing traversals, version churn, trigger
// storms, and the paper's bill-of-materials fixpoint — plus the
// larger-than-RAM churn scenario that drives online compaction.
//
// Each workload runs against a Store, an adapter either over an
// embedded *ode.DB or over a remote server through the client package,
// and produces a Report: throughput, a latency histogram (via the obs
// registry types), the per-op-kind counts (a pure function of the seed,
// so CI can assert reproducibility), and engine counter deltas.
// cmd/ode-bench surfaces the suite as -workload <name>;
// ci/workload_gate.sh diffs the JSON reports against a committed
// baseline.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ode"
	"ode/internal/bench"
	"ode/internal/obs"
)

// Tx is the operation surface a workload step uses: the intersection of
// the embedded ode.Tx and the remote client.Tx APIs.
type Tx interface {
	PNew(c *ode.Class, o *ode.Object) (ode.OID, error)
	Deref(oid ode.OID) (*ode.Object, error)
	Update(oid ode.OID, o *ode.Object) error
	PDelete(oid ode.OID) error
	NewVersion(oid ode.OID) (ode.VRef, error)
	DerefVersion(ref ode.VRef) (*ode.Object, error)
	DeleteVersion(ref ode.VRef) error
	// Count runs an indexed-or-scanned count of c objects whose int
	// field is >= min.
	Count(c *ode.Class, field string, min int64) (int, error)
}

// Store abstracts where a workload runs. Embedded and remote stores
// execute the same steps; only the transport differs.
type Store interface {
	// Mode is "embedded" or "remote"; it lands in the report.
	Mode() string
	// World exposes the benchmark class handles. For a remote store the
	// World carries classes only (its DB field is nil).
	World() *bench.World
	// DB returns the underlying embedded database, or nil for a remote
	// store. Workloads that need it (triggers, compaction) declare
	// RemoteOK = false.
	DB() *ode.DB
	RunTx(fn func(Tx) error) error
	View(fn func(Tx) error) error
	// CounterSnapshot flattens the engine's metric registry to the
	// plain numeric counters (histograms are skipped); the report
	// carries the delta across the run.
	CounterSnapshot() (map[string]int64, error)
}

// Config parameterizes one workload run.
type Config struct {
	Seed    int64 // PRNG seed; op counts are a pure function of it
	Workers int   // concurrent workers (default 4)
	Short   bool  // CI-sized op counts
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Workload is one named mix.
type Workload struct {
	Name string
	Desc string
	// RemoteOK marks mixes that run through the client; the rest need
	// embedded-only APIs (trigger activation, DB.Compact).
	RemoteOK bool
	// dbOpts sizes the database for an embedded run (nil: bench
	// defaults). The larger-than-RAM mix shrinks the buffer pool here.
	dbOpts func(cfg Config) *ode.Options
	run    func(r *runner) error
}

// DBOptions returns the ode.Options an embedded run of this workload
// should open its database with (nil for the bench defaults).
func (wl *Workload) DBOptions(cfg Config) *ode.Options {
	if wl.dbOpts == nil {
		return nil
	}
	return wl.dbOpts(cfg.withDefaults())
}

// registry of mixes, ordered for display.
var mixes = []*Workload{pointsMix, traverseMix, versionsMix, triggersMix, bomMix, churn10xMix}

// Names lists the registered workloads in display order.
func Names() []string {
	out := make([]string, len(mixes))
	for i, wl := range mixes {
		out[i] = wl.Name
	}
	return out
}

// Lookup finds a workload by name.
func Lookup(name string) (*Workload, bool) {
	for _, wl := range mixes {
		if wl.Name == name {
			return wl, true
		}
	}
	return nil, false
}

// runner carries one run's state: the store, the seeded op accounting,
// and the latency histogram (an obs.Histogram, so the buckets match
// every other latency metric in the engine).
type runner struct {
	store Store
	cfg   Config
	w     *bench.World
	rng   *rand.Rand // setup-phase randomness; workers get their own

	hist obs.Histogram
	ops  obs.Counter
	errs obs.Counter

	mu       sync.Mutex
	opCounts map[string]int64
}

// Registry builds the run's own obs registry (names documented in
// docs/OBSERVABILITY.md). It is per-run, not per-database: a database
// registry lives as long as the DB and would reject re-registration on
// a second run.
func (r *runner) Registry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.RegisterHistogram("workload.op_ns", &r.hist)
	reg.RegisterCounter("workload.ops", &r.ops)
	reg.RegisterCounter("workload.errors", &r.errs)
	return reg
}

// count records n completed operations of the named kind.
func (r *runner) count(kind string, n int64) {
	r.mu.Lock()
	r.opCounts[kind] += n
	r.mu.Unlock()
	r.ops.Add(uint64(n))
}

// observe records one op latency sample.
func (r *runner) observe(d time.Duration) { r.hist.Observe(d) }

// timed runs fn as one counted, latency-observed op.
func (r *runner) timed(kind string, fn func() error) error {
	start := time.Now()
	err := fn()
	r.observe(time.Since(start))
	if err != nil {
		r.errs.Inc()
		return err
	}
	r.count(kind, 1)
	return nil
}

// fanout splits totalOps across the configured workers, each with its
// own PRNG seeded from (seed, worker index) so the op mix is a pure
// function of the seed regardless of scheduling.
func (r *runner) fanout(totalOps int, fn func(w int, rng *rand.Rand, ops int) error) error {
	workers := r.cfg.Workers
	if workers > totalOps {
		workers = 1
	}
	per := totalOps / workers
	extra := totalOps % workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ops := per
		if w < extra {
			ops++
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(w)*1_000_003))
			errs[w] = fn(w, rng, ops)
		}(w, ops)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes the workload against store and builds its report.
func (wl *Workload) Run(store Store, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if store.Mode() != "embedded" && !wl.RemoteOK {
		return nil, fmt.Errorf("workload %q needs embedded APIs and cannot run remotely", wl.Name)
	}
	if !wl.RemoteOK && store.DB() == nil {
		return nil, fmt.Errorf("workload %q: store has no embedded DB", wl.Name)
	}
	r := &runner{
		store:    store,
		cfg:      cfg,
		w:        store.World(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		opCounts: map[string]int64{},
	}
	before, err := store.CounterSnapshot()
	if err != nil {
		return nil, fmt.Errorf("workload %q: counter snapshot: %w", wl.Name, err)
	}
	start := time.Now()
	if err := wl.run(r); err != nil {
		return nil, fmt.Errorf("workload %q: %w", wl.Name, err)
	}
	elapsed := time.Since(start)
	after, err := store.CounterSnapshot()
	if err != nil {
		return nil, fmt.Errorf("workload %q: counter snapshot: %w", wl.Name, err)
	}
	return r.report(wl.Name, elapsed, counterDelta(before, after)), nil
}

// counterDelta keeps the counters that moved during the run.
func counterDelta(before, after map[string]int64) map[string]int64 {
	d := map[string]int64{}
	for name, v := range after {
		if dv := v - before[name]; dv != 0 {
			d[name] = dv
		}
	}
	return d
}

// sortedKinds returns the op kinds in stable order (report determinism).
func (r *runner) sortedKinds() []string {
	kinds := make([]string, 0, len(r.opCounts))
	for k := range r.opCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

package workload

import (
	"fmt"
	"math/rand"

	"ode"
)

// scaled picks the CI-short or full size.
func (r *runner) scaled(short, full int) int {
	if r.cfg.Short {
		return short
	}
	return full
}

// loadStock inserts n stock items (qty = i, threshold 100) in batches
// and returns their OIDs through the store (so remote runs load over
// the wire too). namePad >= 0 pads names to that width, which fixes the
// per-record footprint — the larger-than-RAM mix uses it to size its
// dataset in pages.
func (r *runner) loadStock(n, namePad int, qty func(i int) int64) ([]ode.OID, error) {
	oids := make([]ode.OID, 0, n)
	const batch = 500
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		err := r.store.RunTx(func(tx Tx) error {
			for i := start; i < end; i++ {
				name := fmt.Sprintf("wl-%07d", i)
				if namePad > len(name) {
					name = fmt.Sprintf("%-*s", namePad, name)
				}
				o := ode.NewObject(r.w.Stock)
				o.MustSet("name", ode.Str(name))
				o.MustSet("price", ode.Float(float64(i)/100))
				o.MustSet("qty", ode.Int(qty(i)))
				o.MustSet("threshold", ode.Int(100))
				oid, err := tx.PNew(r.w.Stock, o)
				if err != nil {
					return err
				}
				oids = append(oids, oid)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return oids, nil
}

// pointsMix: hot/cold skewed point derefs with a write tail — the
// OO-bench "simple read" pattern. 10% of the objects (a seeded random
// subset) take 80% of the reads; each worker's writes stay on its own
// partition so concurrent transactions never contend on a write lock.
var pointsMix = &Workload{
	Name:     "points",
	Desc:     "hot/cold skewed point derefs (80/10) with 8% updates and occasional indexed counts",
	RemoteOK: true,
	run: func(r *runner) error {
		n := r.scaled(2000, 20000)
		totalOps := r.scaled(4000, 60000)
		oids, err := r.loadStock(n, 0, func(i int) int64 { return int64(i) })
		if err != nil {
			return err
		}
		hot := append([]ode.OID(nil), oids...)
		r.rng.Shuffle(len(hot), func(i, j int) { hot[i], hot[j] = hot[j], hot[i] })
		hot = hot[:len(hot)/10]
		return r.fanout(totalOps, func(w int, rng *rand.Rand, ops int) error {
			mine := partition(oids, w, r.cfg.Workers)
			for done := 0; done < ops; {
				// Reads batch into one view transaction; writes commit
				// one at a time (single-lock transactions cannot
				// deadlock against the batched readers).
				batch := ops - done
				if batch > 64 {
					batch = 64
				}
				var updates []ode.OID
				err := r.store.View(func(tx Tx) error {
					for i := 0; i < batch; i++ {
						switch roll := rng.Intn(100); {
						case roll < 80:
							if err := r.timed("deref.hot", func() error {
								_, err := tx.Deref(hot[rng.Intn(len(hot))])
								return err
							}); err != nil {
								return err
							}
						case roll < 90:
							if err := r.timed("deref.cold", func() error {
								_, err := tx.Deref(oids[rng.Intn(len(oids))])
								return err
							}); err != nil {
								return err
							}
						case roll < 98:
							updates = append(updates, mine[rng.Intn(len(mine))])
						default:
							if err := r.timed("count", func() error {
								_, err := tx.Count(r.w.Stock, "qty", int64(n/2))
								return err
							}); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				for _, oid := range updates {
					oid := oid
					if err := r.timed("update", func() error {
						return r.store.RunTx(func(tx Tx) error {
							o, err := tx.Deref(oid)
							if err != nil {
								return err
							}
							o.MustSet("price", ode.Float(float64(rng.Intn(10000))/100))
							return tx.Update(oid, o)
						})
					}); err != nil {
						return err
					}
				}
				done += batch
			}
			return nil
		})
	},
}

// traverseMix: pointer-chasing down a linked object chain — the
// CODASYL-style navigation pattern clustering papers use to punish bad
// object placement. Every hop is a point deref through a Ref field.
var traverseMix = &Workload{
	Name:     "traverse",
	Desc:     "pointer-chasing walks over a linked cell chain (50 hops per walk)",
	RemoteOK: true,
	run: func(r *runner) error {
		chainLen := r.scaled(1000, 8000)
		walks := r.scaled(300, 3000)
		const hops = 50
		head, err := r.loadChain(chainLen)
		if err != nil {
			return err
		}
		// One full walk collects the cell OIDs for random restarts.
		var cells []ode.OID
		if err := r.store.View(func(tx Tx) error {
			for oid := head; oid != ode.NilOID; {
				cells = append(cells, oid)
				o, err := tx.Deref(oid)
				if err != nil {
					return err
				}
				oid, _ = o.MustGet("next").AnyOID()
			}
			return nil
		}); err != nil {
			return err
		}
		return r.fanout(walks, func(w int, rng *rand.Rand, walks int) error {
			for k := 0; k < walks; k++ {
				start := cells[rng.Intn(len(cells))]
				var steps int64
				err := r.timed("walk", func() error {
					return r.store.View(func(tx Tx) error {
						oid := start
						for h := 0; h < hops && oid != ode.NilOID; h++ {
							o, err := tx.Deref(oid)
							if err != nil {
								return err
							}
							oid, _ = o.MustGet("next").AnyOID()
							steps++
						}
						return nil
					})
				})
				if err != nil {
					return err
				}
				r.count("cell.deref", steps)
			}
			return nil
		})
	},
}

// loadChain builds the cell chain through the store (back to front, so
// each cell's next ref is already persistent).
func (r *runner) loadChain(n int) (ode.OID, error) {
	head := ode.NilOID
	const batch = 500
	for built := 0; built < n; built += batch {
		end := built + batch
		if end > n {
			end = n
		}
		err := r.store.RunTx(func(tx Tx) error {
			for i := built; i < end; i++ {
				o := ode.NewObject(r.w.Cell)
				o.MustSet("value", ode.Int(int64(n-1-i)))
				o.MustSet("next", ode.Ref(head))
				oid, err := tx.PNew(r.w.Cell, o)
				if err != nil {
					return err
				}
				head = oid
			}
			return nil
		})
		if err != nil {
			return ode.NilOID, err
		}
	}
	return head, nil
}

// versionsMix: version-heavy churn — freeze, read back, and discard
// object versions, the paper's §4 machinery under load. Each worker
// versions only its own partition, so write locks never cross workers.
var versionsMix = &Workload{
	Name:     "versions",
	Desc:     "version churn: 45% newversion / 35% derefversion / 20% deleteversion",
	RemoteOK: true,
	run: func(r *runner) error {
		n := r.scaled(600, 4000)
		totalOps := r.scaled(2400, 24000)
		oids, err := r.loadStock(n, 0, func(i int) int64 { return int64(i) })
		if err != nil {
			return err
		}
		return r.fanout(totalOps, func(w int, rng *rand.Rand, ops int) error {
			mine := partition(oids, w, r.cfg.Workers)
			var refs []ode.VRef // this worker's live frozen versions
			newVersion := func() error {
				oid := mine[rng.Intn(len(mine))]
				return r.timed("newversion", func() error {
					return r.store.RunTx(func(tx Tx) error {
						ref, err := tx.NewVersion(oid)
						if err != nil {
							return err
						}
						refs = append(refs, ref)
						return nil
					})
				})
			}
			for i := 0; i < ops; i++ {
				switch roll := rng.Intn(100); {
				case roll < 45 || len(refs) == 0:
					if err := newVersion(); err != nil {
						return err
					}
				case roll < 80:
					ref := refs[rng.Intn(len(refs))]
					if err := r.timed("derefversion", func() error {
						return r.store.View(func(tx Tx) error {
							_, err := tx.DerefVersion(ref)
							return err
						})
					}); err != nil {
						return err
					}
				default:
					ref := refs[len(refs)-1]
					refs = refs[:len(refs)-1]
					if err := r.timed("deleteversion", func() error {
						return r.store.RunTx(func(tx Tx) error { return tx.DeleteVersion(ref) })
					}); err != nil {
						return err
					}
				}
			}
			return nil
		})
	},
}

// triggersMix: trigger-heavy updates. Every item carries an armed
// perpetual restock trigger; the update stream drags qty below the
// threshold and the trigger fires inline at commit, doubling the write
// work. Embedded only: trigger activation is not in the wire protocol.
var triggersMix = &Workload{
	Name:     "triggers",
	Desc:     "updates against armed perpetual restock triggers (fires inline at commit)",
	RemoteOK: false,
	run: func(r *runner) error {
		n := r.scaled(400, 2000)
		totalOps := r.scaled(2000, 16000)
		oids, err := r.loadStock(n, 0, func(i int) int64 { return 200 })
		if err != nil {
			return err
		}
		db := r.store.DB()
		if err := db.RunTx(func(tx *ode.Tx) error {
			for _, oid := range oids {
				if _, err := db.Triggers().Activate(tx, oid, "restock", ode.Int(150)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		r.count("activate", int64(len(oids)))
		return r.fanout(totalOps, func(w int, rng *rand.Rand, ops int) error {
			mine := partition(oids, w, r.cfg.Workers)
			for i := 0; i < ops; i++ {
				oid := mine[rng.Intn(len(mine))]
				dec := int64(1 + rng.Intn(30))
				if err := r.timed("update", func() error {
					return r.store.RunTx(func(tx Tx) error {
						o, err := tx.Deref(oid)
						if err != nil {
							return err
						}
						o.MustSet("qty", ode.Int(o.MustGet("qty").Int()-dec))
						return tx.Update(oid, o)
					})
				}); err != nil {
					return err
				}
			}
			return nil
		})
	},
}

// bomMix: the paper's bill-of-materials fixpoint (§3.2 recursive
// queries) as a workload — repeated transitive-closure traversals of a
// seeded part DAG via worklist, each hop a subparts-set deref.
var bomMix = &Workload{
	Name:     "bom",
	Desc:     "bill-of-materials fixpoint queries over a seeded part DAG",
	RemoteOK: true,
	run: func(r *runner) error {
		depth := 5
		width := r.scaled(40, 120)
		const fanout = 4
		queries := r.scaled(40, 200)
		root, parts, err := r.loadPartDAG(depth, width, fanout)
		if err != nil {
			return err
		}
		r.count("part.load", int64(parts))
		return r.fanout(queries, func(w int, rng *rand.Rand, queries int) error {
			for q := 0; q < queries; q++ {
				var visits int64
				err := r.timed("bom.query", func() error {
					return r.store.View(func(tx Tx) error {
						seen := map[ode.OID]bool{root: true}
						work := []ode.OID{root}
						for len(work) > 0 {
							oid := work[len(work)-1]
							work = work[:len(work)-1]
							o, err := tx.Deref(oid)
							if err != nil {
								return err
							}
							visits++
							for _, v := range o.MustGet("subparts").Set().Elems() {
								sub, ok := v.AnyOID()
								if !ok || seen[sub] {
									continue
								}
								seen[sub] = true
								work = append(work, sub)
							}
						}
						return nil
					})
				})
				if err != nil {
					return err
				}
				r.count("bom.visit", visits)
			}
			return nil
		})
	},
}

// loadPartDAG mirrors bench.LoadPartDAG through the store interface:
// level d parts point at `fanout` seeded-random children on level d+1.
func (r *runner) loadPartDAG(depth, width, fanout int) (ode.OID, int, error) {
	var root ode.OID
	total := 0
	levels := make([][]ode.OID, depth+1)
	err := r.store.RunTx(func(tx Tx) error {
		mk := func(name string) (ode.OID, error) {
			o := ode.NewObject(r.w.Part)
			o.MustSet("name", ode.Str(name))
			total++
			return tx.PNew(r.w.Part, o)
		}
		var err error
		root, err = mk("root")
		if err != nil {
			return err
		}
		levels[0] = []ode.OID{root}
		for d := 1; d <= depth; d++ {
			for i := 0; i < width; i++ {
				oid, err := mk(fmt.Sprintf("p-%d-%d", d, i))
				if err != nil {
					return err
				}
				levels[d] = append(levels[d], oid)
			}
		}
		for d := 0; d < depth; d++ {
			for _, parent := range levels[d] {
				o, err := tx.Deref(parent)
				if err != nil {
					return err
				}
				set := o.MustGet("subparts").Set()
				for k := 0; k < fanout; k++ {
					set.Insert(ode.Ref(levels[d+1][r.rng.Intn(len(levels[d+1]))]))
				}
				if err := tx.Update(parent, o); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return root, total, err
}

// churn10xMix: the larger-than-RAM scenario. The database opens with a
// deliberately small buffer pool; the mix loads a padded dataset ~10×
// the pool, deletes 85% of it (leaving the page file full of sparse
// pages), runs DB.Compact to reclaim them, then refills into the freed
// space and compacts once more. Embedded only (Compact is a DB API).
var churn10xMix = &Workload{
	Name:     "churn10x",
	Desc:     "dataset ~10x the buffer pool: mass delete, online compaction, refill into reclaimed pages",
	RemoteOK: false,
	dbOpts: func(cfg Config) *ode.Options {
		pool := 128
		if cfg.Short {
			pool = 32
		}
		return &ode.Options{NoSync: true, PoolPages: pool}
	},
	run: func(r *runner) error {
		pool := 128
		if r.cfg.Short {
			pool = 32
		}
		// ~40 padded records per 4 KiB page; 400 per pool page is ~10x
		// the pool.
		n := pool * 400
		oids, err := r.loadStock(n, 96, func(i int) int64 { return int64(i) })
		if err != nil {
			return err
		}
		r.count("insert", int64(len(oids)))

		// Delete 85%, batched; survivors = every 7th slot approximately
		// via the seeded shuffle.
		doomed := append([]ode.OID(nil), oids...)
		r.rng.Shuffle(len(doomed), func(i, j int) { doomed[i], doomed[j] = doomed[j], doomed[i] })
		cut := len(doomed) * 85 / 100
		survivors := doomed[cut:]
		doomed = doomed[:cut]
		const batch = 500
		for start := 0; start < len(doomed); start += batch {
			end := start + batch
			if end > len(doomed) {
				end = len(doomed)
			}
			err := r.store.RunTx(func(tx Tx) error {
				for _, oid := range doomed[start:end] {
					if err := tx.PDelete(oid); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			r.count("delete", int64(end-start))
		}

		if err := r.timed("compact", func() error {
			_, err := r.store.DB().Compact()
			return err
		}); err != nil {
			return err
		}

		// Every survivor must still deref (a scan 10x the pool: this is
		// the bounded-RSS part — the pool cannot hold the working set).
		err = r.fanout(len(survivors), func(w int, rng *rand.Rand, ops int) error {
			mine := partition(survivors, w, r.cfg.Workers)
			for i := 0; i < ops && i < len(mine); i++ {
				if err := r.timed("deref", func() error {
					return r.store.View(func(tx Tx) error {
						_, err := tx.Deref(mine[i%len(mine)])
						return err
					})
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}

		// Refill a quarter of the deleted volume into the reclaimed
		// pages, then compact once more.
		refill, err := r.loadStock(n/4, 96, func(i int) int64 { return int64(i) })
		if err != nil {
			return err
		}
		r.count("insert", int64(len(refill)))
		return r.timed("compact", func() error {
			_, err := r.store.DB().Compact()
			return err
		})
	},
}

// partition slices oids into the w-th of `workers` contiguous,
// near-equal chunks (never empty for w < workers when len >= workers).
func partition(oids []ode.OID, w, workers int) []ode.OID {
	n := len(oids)
	lo, hi := n*w/workers, n*(w+1)/workers
	if lo == hi {
		return oids
	}
	return oids[lo:hi]
}

package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame hammers the frame decoder with corrupted streams.
// The invariants: DecodeFrame never panics, never claims to consume
// more bytes than it was given, and on success re-encoding the decoded
// frame reproduces exactly the consumed bytes (the codec is canonical).
// The seed corpus covers the interesting failure classes: truncated
// frames, oversized length prefixes, and CRC-corrupted payloads.
func FuzzDecodeFrame(f *testing.F) {
	good := AppendFrame(nil, &Frame{ReqID: 7, Type: CmdBegin, Body: AppendUvarint(nil, 500)})
	f.Add(good)
	f.Add(good[:len(good)-3]) // truncated trailer
	f.Add(good[:5])           // truncated payload
	f.Add([]byte{})           // empty
	corrupt := append([]byte(nil), good...)
	corrupt[9] ^= 0x40 // flip a payload bit: CRC mismatch
	f.Add(corrupt)
	huge := binary.BigEndian.AppendUint32(nil, uint32(DefaultMaxFrame)+1)
	f.Add(append(huge, good[4:]...)) // oversized length prefix
	tiny := binary.BigEndian.AppendUint32(nil, 3)
	f.Add(append(tiny, 0, 0, 0, 0, 0, 0, 0)) // payload below reqID+type
	// Two frames back to back: decoding must stop at the first.
	f.Add(append(append([]byte(nil), good...), good...))

	// The replication surface (0x50–0x53 and the epoch-bearing
	// responses): subscribe handshakes, shipped WAL frames, heartbeats,
	// and status bodies all cross trust boundaries between nodes, so
	// the decoders get the same hammering as the core commands.
	sub := &SubscribeReq{ReplID: "r-1234", LSN: 99, CanSnapshot: true, Epoch: 7}
	f.Add(AppendFrame(nil, &Frame{ReqID: 2, Type: CmdWALSubscribe, Body: sub.Append(nil)}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 3, Type: CmdWALAck, Body: AppendUvarint(nil, 99)}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 4, Type: CmdReplStatus}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 5, Type: CmdPromote}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 6, Type: RespWALFrame, Body: WALFrameBody(42, 3, []byte{1, 2, 3, 4})}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 7, Type: RespWALHeartbeat, Body: HeartbeatBody(3, 40, 42)}))
	st := &ReplStatus{ReadOnly: true, ReplID: "r-1234", LSN: 42, Epoch: 3, EpochLSN: 40, LastKill: "slow", Advertise: "10.0.0.1:7777"}
	f.Add(AppendFrame(nil, &Frame{ReqID: 8, Type: RespReplStatus, Body: st.Append(nil)}))
	// Epoch truncated off a subscribe body: must decode-error, not
	// default to epoch 0.
	f.Add(AppendFrame(nil, &Frame{ReqID: 9, Type: CmdWALSubscribe, Body: sub.Append(nil)[:8]}))

	// The 2PC surface (0x60–0x64): gids, decision responses, and shard
	// status bodies arrive from the router and from operators, so the
	// decoders get the same treatment as 0x50–0x53. Truncation seeds
	// cut inside a string length and inside the prepared list.
	gid := GIDBody("s2-deadbeef-17")
	f.Add(AppendFrame(nil, &Frame{ReqID: 10, Type: CmdPrepare, Body: gid}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 11, Type: CmdCommitPrepared, Body: gid}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 12, Type: CmdAbortPrepared, Body: gid}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 13, Type: CmdTxStatus, Body: gid}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 14, Type: CmdPrepare, Body: gid[:len(gid)-4]})) // gid cut mid-string
	f.Add(AppendFrame(nil, &Frame{ReqID: 15, Type: RespTxStatus, Body: TxStatusBody("committed", 4242)}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 16, Type: RespTxStatus, Body: TxStatusBody("prepared", 0)[:3]})) // lsn truncated off
	sh := &ShardStatus{LSN: 99, Epoch: 4, ReadOnly: false, ShardSlot: 1, ShardCount: 3,
		Prepared: []PreparedGID{{GID: "s0-aa-1", Ops: 2, AgeMS: 1500, Recovered: true}, {GID: "s1-bb-2", Ops: 1}}}
	shBody := sh.Append(nil)
	f.Add(AppendFrame(nil, &Frame{ReqID: 17, Type: CmdShardStatus}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 18, Type: RespShardStatus, Body: shBody}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 19, Type: RespShardStatus, Body: shBody[:len(shBody)-6]})) // list cut mid-entry
	// A prepared-count claiming more entries than the body holds: the
	// decoder's overflow guard must error, not allocate.
	lie := AppendUvarint(AppendUvarint(nil, 99), 4)
	lie = append(lie, 0)
	lie = AppendUvarint(lie, 1)
	lie = AppendUvarint(lie, 3)
	lie = AppendUvarint(lie, 1<<40)
	f.Add(AppendFrame(nil, &Frame{ReqID: 20, Type: RespShardStatus, Body: lie}))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, 0)
		if err != nil {
			if fr != nil {
				t.Fatalf("error %v with non-nil frame", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
		// The body decoders must tolerate arbitrary bodies.
		_, _ = DecodeForallReq(fr.Body, true)
		_, _ = DecodeForallReq(fr.Body, false)
		_ = DecodeErrBody(fr.Body)
		_, _ = DecodeSubscribeReq(fr.Body)
		_, _, _, _ = DecodeWALFrame(fr.Body)
		_, _, _, _ = DecodeHeartbeat(fr.Body)
		_, _ = DecodeReplStatus(fr.Body)
		_, _, _ = DecodeSnapBody(fr.Body)
		_, _ = DecodeGIDBody(fr.Body)
		_, _, _ = DecodeTxStatusBody(fr.Body)
		_, _ = DecodeShardStatus(fr.Body)
	})
}

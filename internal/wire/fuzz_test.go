package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame hammers the frame decoder with corrupted streams.
// The invariants: DecodeFrame never panics, never claims to consume
// more bytes than it was given, and on success re-encoding the decoded
// frame reproduces exactly the consumed bytes (the codec is canonical).
// The seed corpus covers the interesting failure classes: truncated
// frames, oversized length prefixes, and CRC-corrupted payloads.
func FuzzDecodeFrame(f *testing.F) {
	good := AppendFrame(nil, &Frame{ReqID: 7, Type: CmdBegin, Body: AppendUvarint(nil, 500)})
	f.Add(good)
	f.Add(good[:len(good)-3]) // truncated trailer
	f.Add(good[:5])           // truncated payload
	f.Add([]byte{})           // empty
	corrupt := append([]byte(nil), good...)
	corrupt[9] ^= 0x40 // flip a payload bit: CRC mismatch
	f.Add(corrupt)
	huge := binary.BigEndian.AppendUint32(nil, uint32(DefaultMaxFrame)+1)
	f.Add(append(huge, good[4:]...)) // oversized length prefix
	tiny := binary.BigEndian.AppendUint32(nil, 3)
	f.Add(append(tiny, 0, 0, 0, 0, 0, 0, 0)) // payload below reqID+type
	// Two frames back to back: decoding must stop at the first.
	f.Add(append(append([]byte(nil), good...), good...))

	// The replication surface (0x50–0x53 and the epoch-bearing
	// responses): subscribe handshakes, shipped WAL frames, heartbeats,
	// and status bodies all cross trust boundaries between nodes, so
	// the decoders get the same hammering as the core commands.
	sub := &SubscribeReq{ReplID: "r-1234", LSN: 99, CanSnapshot: true, Epoch: 7}
	f.Add(AppendFrame(nil, &Frame{ReqID: 2, Type: CmdWALSubscribe, Body: sub.Append(nil)}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 3, Type: CmdWALAck, Body: AppendUvarint(nil, 99)}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 4, Type: CmdReplStatus}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 5, Type: CmdPromote}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 6, Type: RespWALFrame, Body: WALFrameBody(42, 3, []byte{1, 2, 3, 4})}))
	f.Add(AppendFrame(nil, &Frame{ReqID: 7, Type: RespWALHeartbeat, Body: HeartbeatBody(3, 40, 42)}))
	st := &ReplStatus{ReadOnly: true, ReplID: "r-1234", LSN: 42, Epoch: 3, EpochLSN: 40, LastKill: "slow", Advertise: "10.0.0.1:7777"}
	f.Add(AppendFrame(nil, &Frame{ReqID: 8, Type: RespReplStatus, Body: st.Append(nil)}))
	// Epoch truncated off a subscribe body: must decode-error, not
	// default to epoch 0.
	f.Add(AppendFrame(nil, &Frame{ReqID: 9, Type: CmdWALSubscribe, Body: sub.Append(nil)[:8]}))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, 0)
		if err != nil {
			if fr != nil {
				t.Fatalf("error %v with non-nil frame", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
		// The body decoders must tolerate arbitrary bodies.
		_, _ = DecodeForallReq(fr.Body, true)
		_, _ = DecodeForallReq(fr.Body, false)
		_ = DecodeErrBody(fr.Body)
		_, _ = DecodeSubscribeReq(fr.Body)
		_, _, _, _ = DecodeWALFrame(fr.Body)
		_, _, _, _ = DecodeHeartbeat(fr.Body)
		_, _ = DecodeReplStatus(fr.Body)
		_, _, _ = DecodeSnapBody(fr.Body)
	})
}

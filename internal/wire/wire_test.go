package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ode/internal/core"
	"ode/internal/object"
	"ode/internal/txn"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{ReqID: 1, Type: CmdPing},
		{ReqID: 7, Type: CmdBegin, Body: AppendUvarint(nil, 250)},
		{ReqID: 1 << 40, Type: RespBatch, Body: bytes.Repeat([]byte{0xab}, 4096)},
		{ReqID: 0, Type: RespErr, Body: ErrBody(CodeOverloaded, "full")},
	}
	var buf bytes.Buffer
	for i := range frames {
		if _, err := WriteFrame(&buf, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	r := bytes.NewReader(stream)
	var consumed int
	for i := range frames {
		f, n, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		consumed += n
		if f.ReqID != frames[i].ReqID || f.Type != frames[i].Type || !bytes.Equal(f.Body, frames[i].Body) {
			t.Fatalf("frame %d round-trip mismatch: %+v", i, f)
		}
		// DecodeFrame must agree with ReadFrame byte for byte.
		df, dn, err := DecodeFrame(stream[consumed-n:], 0)
		if err != nil || dn != n || df.ReqID != f.ReqID || df.Type != f.Type || !bytes.Equal(df.Body, f.Body) {
			t.Fatalf("frame %d: DecodeFrame disagrees with ReadFrame (err=%v)", i, err)
		}
	}
	if _, _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	good := AppendFrame(nil, &Frame{ReqID: 3, Type: CmdDeref, Body: AppendUvarint(nil, 42)})

	// Flip one payload byte: CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[6] ^= 0xff
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrCRC) {
		t.Fatalf("payload corruption: err = %v, want ErrCRC", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrCRC) {
		t.Fatalf("ReadFrame corruption: err = %v, want ErrCRC", err)
	}

	// Truncations at every prefix must be reported as incomplete, never
	// as a parse success or a panic.
	for n := 0; n < len(good); n++ {
		if _, _, err := DecodeFrame(good[:n], 0); err == nil {
			t.Fatalf("truncated frame of %d bytes decoded successfully", n)
		}
	}

	// Oversized length prefix.
	huge := binary.BigEndian.AppendUint32(nil, uint32(DefaultMaxFrame+1))
	huge = append(huge, good[4:]...)
	if _, _, err := DecodeFrame(huge, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}

	// Undersized payload (below reqID+type).
	tiny := binary.BigEndian.AppendUint32(nil, 3)
	tiny = append(tiny, 1, 2, 3, 0, 0, 0, 0)
	if _, _, err := DecodeFrame(tiny, 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("undersized frame: err = %v, want ErrMalformed", err)
	}
}

func TestHello(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, Version, 0); err != nil {
		t.Fatal(err)
	}
	v, fl, err := ReadHello(&buf)
	if err != nil || v != Version || fl != 0 {
		t.Fatalf("hello round-trip: v=%d flags=%d err=%v", v, fl, err)
	}
	if _, _, err := ReadHello(bytes.NewReader([]byte("HTTP/1.1 400\r\n"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v", err)
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []error{
		txn.ErrOverloaded,
		txn.ErrDBClosed,
		txn.ErrTxTimeout,
		txn.ErrCanceled,
		txn.ErrDeadlock,
		txn.ErrConstraintViolation,
		txn.ErrTxDone,
		object.ErrNoObject,
		object.ErrNoVersion,
		object.ErrNoCluster,
		ErrProto,
		ErrSchema,
	}
	for _, sentinel := range cases {
		code := Code(sentinel)
		if code == CodeUnknown {
			t.Errorf("%v maps to CodeUnknown", sentinel)
			continue
		}
		back := CodeErr(code, sentinel.Error())
		if !errors.Is(back, sentinel) {
			t.Errorf("CodeErr(Code(%v)) = %v, does not wrap the sentinel", sentinel, back)
		}
	}
	// Retryability must survive the wire: a remote deadlock or timeout
	// is retryable, a remote overload or cancellation is not.
	if !txn.IsRetryable(CodeErr(CodeDeadlock, "x")) || !txn.IsRetryable(CodeErr(CodeTxTimeout, "x")) {
		t.Error("remote deadlock/timeout not retryable")
	}
	if txn.IsRetryable(CodeErr(CodeOverloaded, "x")) || txn.IsRetryable(CodeErr(CodeCanceled, "x")) {
		t.Error("remote overload/cancel wrongly retryable")
	}
	if err := DecodeErrBody(ErrBody(CodeNoObject, "@9")); !errors.Is(err, object.ErrNoObject) {
		t.Errorf("DecodeErrBody = %v", err)
	}
}

func TestForallReqRoundTrip(t *testing.T) {
	val := object.EncodeValue(core.Int(100))
	reqs := []ForallReq{
		{Class: "stockitem", Flags: ForallSubtypes, Field: "qty", Op: 5, Value: val, Batch: 64},
		{Class: "person", Flags: 0, Field: "", Batch: 1},
	}
	for _, want := range reqs {
		for _, withBatch := range []bool{true, false} {
			w := want
			if !withBatch {
				w.Batch = 0
			}
			body := w.Append(nil, withBatch)
			got, err := DecodeForallReq(body, withBatch)
			if err != nil {
				t.Fatal(err)
			}
			if got.Class != w.Class || got.Flags != w.Flags || got.Field != w.Field ||
				got.Op != w.Op || !bytes.Equal(got.Value, w.Value) || got.Batch != w.Batch {
				t.Fatalf("forall req round-trip: got %+v want %+v", got, w)
			}
		}
	}
	if _, err := DecodeForallReq([]byte{0x05, 'a'}, true); err == nil {
		t.Fatal("truncated forall req decoded successfully")
	}
}

func TestDecSticky(t *testing.T) {
	d := NewDec([]byte{0x02, 'h', 'i'})
	if s := d.String(); s != "hi" || d.Err() != nil {
		t.Fatalf("String = %q err=%v", s, d.Err())
	}
	// Exhausted: every further read fails and sticks.
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("read past end did not set the error")
	}
	if b := d.Bytes(); b != nil {
		t.Fatalf("Bytes after error = %v, want nil", b)
	}
}

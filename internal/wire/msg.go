package wire

import (
	"encoding/binary"
	"fmt"
)

// Body encoding: uvarints for integers, length-prefixed bytes for
// strings, images, and value operands. Images and predicate operands
// use the object codec (object.Encode / object.EncodeValue) and travel
// here as opaque byte strings, so the wire layer never decodes objects
// itself.

// AppendUvarint appends a uvarint to a body under construction.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(b, s []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Dec is a sticky-error body decoder. After any failure, every
// subsequent read returns a zero value and Err reports the first
// failure; handlers decode a whole body and check Err once.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a frame body for decoding.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated body", ErrMalformed)
	}
}

// Uvarint reads one uvarint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Byte reads one byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail()
		return 0
	}
	c := d.b[0]
	d.b = d.b[1:]
	return c
}

// Bytes reads one length-prefixed byte string (aliasing the body).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	s := d.b[:n]
	d.b = d.b[n:]
	return s
}

// String reads one length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// Rest returns the undecoded remainder of the body.
func (d *Dec) Rest() []byte { return d.b }

// ForallReq is the body of a CmdForall (and, without Batch, a
// CmdExplain) request. Field == "" means no suchthat clause; Value is
// an object.EncodeValue operand.
type ForallReq struct {
	Class string
	Flags byte
	Field string
	Op    byte // query.CmpOp when Field != ""
	Value []byte
	Batch uint64 // requested rows per RespBatch frame (CmdForall only)
}

// Append serializes the request body.
func (r *ForallReq) Append(b []byte, withBatch bool) []byte {
	b = AppendString(b, r.Class)
	b = append(b, r.Flags)
	b = AppendString(b, r.Field)
	if r.Field != "" {
		b = append(b, r.Op)
		b = AppendBytes(b, r.Value)
	}
	if withBatch {
		b = AppendUvarint(b, r.Batch)
	}
	return b
}

// DecodeForallReq parses a CmdForall/CmdExplain body.
func DecodeForallReq(body []byte, withBatch bool) (*ForallReq, error) {
	d := NewDec(body)
	r := &ForallReq{}
	r.Class = d.String()
	r.Flags = d.Byte()
	r.Field = d.String()
	if d.Err() == nil && r.Field != "" {
		r.Op = d.Byte()
		r.Value = d.Bytes()
	}
	if withBatch {
		r.Batch = d.Uvarint()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// ErrBody builds a RespErr body.
func ErrBody(code uint16, msg string) []byte {
	b := AppendUvarint(nil, uint64(code))
	return AppendString(b, msg)
}

// DecodeErrBody parses a RespErr body into a typed error.
func DecodeErrBody(body []byte) error {
	d := NewDec(body)
	code := d.Uvarint()
	msg := d.String()
	if err := d.Err(); err != nil {
		return err
	}
	return CodeErr(uint16(code), msg)
}

package wire

import (
	"encoding/binary"
	"fmt"
)

// Body encoding: uvarints for integers, length-prefixed bytes for
// strings, images, and value operands. Images and predicate operands
// use the object codec (object.Encode / object.EncodeValue) and travel
// here as opaque byte strings, so the wire layer never decodes objects
// itself.

// AppendUvarint appends a uvarint to a body under construction.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(b, s []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Dec is a sticky-error body decoder. After any failure, every
// subsequent read returns a zero value and Err reports the first
// failure; handlers decode a whole body and check Err once.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a frame body for decoding.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated body", ErrMalformed)
	}
}

// Uvarint reads one uvarint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Byte reads one byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail()
		return 0
	}
	c := d.b[0]
	d.b = d.b[1:]
	return c
}

// Bytes reads one length-prefixed byte string (aliasing the body).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	s := d.b[:n]
	d.b = d.b[n:]
	return s
}

// String reads one length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// Rest returns the undecoded remainder of the body.
func (d *Dec) Rest() []byte { return d.b }

// ForallReq is the body of a CmdForall (and, without Batch, a
// CmdExplain) request. Field == "" means no suchthat clause; Value is
// an object.EncodeValue operand.
type ForallReq struct {
	Class string
	Flags byte
	Field string
	Op    byte // query.CmpOp when Field != ""
	Value []byte
	Batch uint64 // requested rows per RespBatch frame (CmdForall only)
}

// Append serializes the request body.
func (r *ForallReq) Append(b []byte, withBatch bool) []byte {
	b = AppendString(b, r.Class)
	b = append(b, r.Flags)
	b = AppendString(b, r.Field)
	if r.Field != "" {
		b = append(b, r.Op)
		b = AppendBytes(b, r.Value)
	}
	if withBatch {
		b = AppendUvarint(b, r.Batch)
	}
	return b
}

// DecodeForallReq parses a CmdForall/CmdExplain body.
func DecodeForallReq(body []byte, withBatch bool) (*ForallReq, error) {
	d := NewDec(body)
	r := &ForallReq{}
	r.Class = d.String()
	r.Flags = d.Byte()
	r.Field = d.String()
	if d.Err() == nil && r.Field != "" {
		r.Op = d.Byte()
		r.Value = d.Bytes()
	}
	if withBatch {
		r.Batch = d.Uvarint()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// SubscribeReq is the body of a CmdWALSubscribe request: the
// subscriber's replication id, applied LSN, and fencing epoch, plus
// whether it can accept a full snapshot (only a fresh, empty replica
// can).
type SubscribeReq struct {
	ReplID      string
	LSN         uint64
	CanSnapshot bool
	Epoch       uint64
}

// Append serializes the subscribe body.
func (r *SubscribeReq) Append(b []byte) []byte {
	b = AppendString(b, r.ReplID)
	b = AppendUvarint(b, r.LSN)
	var flags byte
	if r.CanSnapshot {
		flags |= 1
	}
	b = append(b, flags)
	return AppendUvarint(b, r.Epoch)
}

// DecodeSubscribeReq parses a CmdWALSubscribe body.
func DecodeSubscribeReq(body []byte) (*SubscribeReq, error) {
	d := NewDec(body)
	r := &SubscribeReq{}
	r.ReplID = d.String()
	r.LSN = d.Uvarint()
	r.CanSnapshot = d.Byte()&1 != 0
	r.Epoch = d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// WALFrameBody builds a RespWALFrame body: the batch's LSN (0 for a
// snapshot batch) and the shipping node's fencing epoch, followed by
// the batch's raw WAL encoding. The epoch lets a replica reject frames
// from a deposed primary mid-stream; because the stream is gap-free,
// an epoch *increase* observed at LSN n means the promotion boundary
// was n-1.
func WALFrameBody(lsn, epoch uint64, raw []byte) []byte {
	b := AppendUvarint(make([]byte, 0, 20+len(raw)), lsn)
	b = AppendUvarint(b, epoch)
	return append(b, raw...)
}

// DecodeWALFrame splits a RespWALFrame body (raw aliases body).
func DecodeWALFrame(body []byte) (lsn, epoch uint64, raw []byte, err error) {
	d := NewDec(body)
	lsn = d.Uvarint()
	epoch = d.Uvarint()
	if err := d.Err(); err != nil {
		return 0, 0, nil, err
	}
	return lsn, epoch, d.Rest(), nil
}

// HeartbeatBody builds a RespWALHeartbeat body: the primary's fencing
// epoch, that epoch's start LSN, and the primary's current LSN.
// Heartbeats piggyback liveness on an otherwise-idle subscribe stream;
// the epoch pair keeps long-idle replicas fenced and the LSN feeds
// their lag gauge.
func HeartbeatBody(epoch, epochLSN, lsn uint64) []byte {
	b := AppendUvarint(make([]byte, 0, 30), epoch)
	b = AppendUvarint(b, epochLSN)
	return AppendUvarint(b, lsn)
}

// DecodeHeartbeat parses a RespWALHeartbeat body.
func DecodeHeartbeat(body []byte) (epoch, epochLSN, lsn uint64, err error) {
	d := NewDec(body)
	epoch = d.Uvarint()
	epochLSN = d.Uvarint()
	lsn = d.Uvarint()
	return epoch, epochLSN, lsn, d.Err()
}

// ReplStatus is the body of a RespReplStatus response (and, with the
// LSN as the peer's, the state a CmdReplStatus reports): role,
// replication id, applied LSN, fencing epoch and its start LSN, the
// reason the node's source last dropped a subscriber ("" if it never
// has), and the node's advertised address — its stable identity for
// election ranking, independent of whatever proxied address the
// observer happened to dial. As a subscribe accept, LSN is the
// position the stream starts from.
type ReplStatus struct {
	ReadOnly  bool
	ReplID    string
	LSN       uint64
	Epoch     uint64
	EpochLSN  uint64
	LastKill  string
	Advertise string
}

// Append serializes the status body.
func (r *ReplStatus) Append(b []byte) []byte {
	var role byte
	if r.ReadOnly {
		role = 1
	}
	b = append(b, role)
	b = AppendString(b, r.ReplID)
	b = AppendUvarint(b, r.LSN)
	b = AppendUvarint(b, r.Epoch)
	b = AppendUvarint(b, r.EpochLSN)
	b = AppendString(b, r.LastKill)
	return AppendString(b, r.Advertise)
}

// DecodeReplStatus parses a RespReplStatus body.
func DecodeReplStatus(body []byte) (*ReplStatus, error) {
	d := NewDec(body)
	r := &ReplStatus{}
	r.ReadOnly = d.Byte() == 1
	r.ReplID = d.String()
	r.LSN = d.Uvarint()
	r.Epoch = d.Uvarint()
	r.EpochLSN = d.Uvarint()
	r.LastKill = d.String()
	r.Advertise = d.String()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// SnapBody builds the body shared by RespWALSnapBegin (the primary's
// replication id + the LSN the snapshot is consistent-as-of) and
// RespWALSnapEnd (the same pair, closing the dump).
func SnapBody(replID string, lsn uint64) []byte {
	b := AppendString(nil, replID)
	return AppendUvarint(b, lsn)
}

// DecodeSnapBody parses a RespWALSnapBegin/RespWALSnapEnd body.
func DecodeSnapBody(body []byte) (replID string, lsn uint64, err error) {
	d := NewDec(body)
	replID = d.String()
	lsn = d.Uvarint()
	return replID, lsn, d.Err()
}

// GIDBody builds the body shared by CmdPrepare, CmdCommitPrepared,
// CmdAbortPrepared, and CmdTxStatus: the global transaction id.
func GIDBody(gid string) []byte { return AppendString(nil, gid) }

// DecodeGIDBody parses a gid-only body.
func DecodeGIDBody(body []byte) (string, error) {
	d := NewDec(body)
	gid := d.String()
	return gid, d.Err()
}

// TxStatusBody builds a RespTxStatus body: the transaction's fate on
// the answering node ("prepared", "committed", "aborted", "unknown")
// and, for a commit, the local commit LSN.
func TxStatusBody(status string, lsn uint64) []byte {
	b := AppendString(nil, status)
	return AppendUvarint(b, lsn)
}

// DecodeTxStatusBody parses a RespTxStatus body.
func DecodeTxStatusBody(body []byte) (status string, lsn uint64, err error) {
	d := NewDec(body)
	status = d.String()
	lsn = d.Uvarint()
	return status, lsn, d.Err()
}

// PreparedGID describes one in-doubt transaction in a ShardStatus.
type PreparedGID struct {
	GID       string
	Ops       uint64
	AgeMS     uint64
	Recovered bool
}

// ShardStatus is the body of a RespShardStatus response: the node's
// durability position and fencing epoch, its shard coordinates, and
// every prepared (in-doubt) two-phase-commit transaction it holds —
// the raw material of the in-doubt resolution runbook
// (docs/SHARDING.md).
type ShardStatus struct {
	LSN        uint64
	Epoch      uint64
	ReadOnly   bool
	ShardSlot  uint64 // this node's shard index
	ShardCount uint64 // 0 when unsharded
	Prepared   []PreparedGID
}

// Append serializes the status body.
func (s *ShardStatus) Append(b []byte) []byte {
	b = AppendUvarint(b, s.LSN)
	b = AppendUvarint(b, s.Epoch)
	var flags byte
	if s.ReadOnly {
		flags |= 1
	}
	b = append(b, flags)
	b = AppendUvarint(b, s.ShardSlot)
	b = AppendUvarint(b, s.ShardCount)
	b = AppendUvarint(b, uint64(len(s.Prepared)))
	for i := range s.Prepared {
		p := &s.Prepared[i]
		b = AppendString(b, p.GID)
		b = AppendUvarint(b, p.Ops)
		b = AppendUvarint(b, p.AgeMS)
		var pf byte
		if p.Recovered {
			pf |= 1
		}
		b = append(b, pf)
	}
	return b
}

// DecodeShardStatus parses a RespShardStatus body.
func DecodeShardStatus(body []byte) (*ShardStatus, error) {
	d := NewDec(body)
	s := &ShardStatus{}
	s.LSN = d.Uvarint()
	s.Epoch = d.Uvarint()
	s.ReadOnly = d.Byte()&1 != 0
	s.ShardSlot = d.Uvarint()
	s.ShardCount = d.Uvarint()
	n := d.Uvarint()
	if d.Err() == nil && n > uint64(len(d.Rest())) {
		// Each entry consumes at least one byte; a count beyond the
		// remaining body is corruption, not an allocation request.
		return nil, fmt.Errorf("%w: prepared count %d exceeds body", ErrMalformed, n)
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		var p PreparedGID
		p.GID = d.String()
		p.Ops = d.Uvarint()
		p.AgeMS = d.Uvarint()
		p.Recovered = d.Byte()&1 != 0
		s.Prepared = append(s.Prepared, p)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ErrBody builds a RespErr body.
func ErrBody(code uint16, msg string) []byte {
	b := AppendUvarint(nil, uint64(code))
	return AppendString(b, msg)
}

// DecodeErrBody parses a RespErr body into a typed error.
func DecodeErrBody(body []byte) error {
	d := NewDec(body)
	code := d.Uvarint()
	msg := d.String()
	if err := d.Err(); err != nil {
		return err
	}
	return CodeErr(uint16(code), msg)
}

// Package wire is the client/server protocol of a served Ode database:
// length-prefixed, CRC-checked binary frames carrying typed commands
// for the transaction lifecycle (begin/commit/abort), object
// manipulation (pnew/deref/update/pdelete), version navigation
// (newversion/versions/derefversion), streamed forall scans, EXPLAIN,
// and remote O++ execution for the shell.
//
// A connection starts with a 6-byte hello in each direction (magic
// "ODEW", protocol version, flags); afterwards every message is one
// frame:
//
//	uint32 BE  payload length n
//	n bytes    payload = uint64 BE request id, 1 byte type, body
//	uint32 BE  IEEE CRC-32 of the payload
//
// Request ids are chosen by the client and echoed by the server, so a
// client may pipeline requests over one connection; the server answers
// in order. A streamed scan answers one request with any number of
// RespBatch frames followed by RespDone, all under the request's id.
// Errors travel as RespErr frames carrying a typed code that maps back
// onto the engine's sentinel errors (ErrOverloaded, ErrTxTimeout, ...),
// so errors.Is works identically against a remote database. A RespErr
// with request id 0 is a connection-level failure (handshake rejection,
// session-table shed) and poisons the connection.
//
// docs/SERVER.md is the normative protocol description.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ode/internal/object"
	"ode/internal/txn"
)

// Protocol constants.
const (
	// Magic opens the hello exchange in both directions.
	Magic = "ODEW"
	// Version is the protocol version this build speaks.
	Version = 1
	// HelloLen is the byte length of the hello in each direction.
	HelloLen = 6
	// DefaultMaxFrame bounds the payload of a single frame (8 MiB);
	// larger objects must not exist (pages are 4 KiB, images far
	// smaller), so an oversized length prefix is treated as corruption
	// rather than an allocation request.
	DefaultMaxFrame = 8 << 20
	// frameOverhead is the non-payload bytes of a frame: the length
	// prefix and the CRC trailer.
	frameOverhead = 8
	// payloadMin is the smallest valid payload: request id + type.
	payloadMin = 9
)

// Message types. Requests occupy 0x01..0x7f, responses 0x80..0xff.
const (
	CmdPing           = 0x01
	CmdBegin          = 0x02
	CmdCommit         = 0x03
	CmdAbort          = 0x04
	CmdPNew           = 0x10
	CmdDeref          = 0x11
	CmdUpdate         = 0x12
	CmdPDelete        = 0x13
	CmdDerefCached    = 0x14
	CmdCurrentVersion = 0x20
	CmdNewVersion     = 0x21
	CmdDeleteVersion  = 0x22
	CmdVersions       = 0x23
	CmdDerefVersion   = 0x24
	CmdForall         = 0x30
	CmdExplain        = 0x31
	CmdOQL            = 0x40
	CmdMetrics        = 0x41
	CmdWALSubscribe   = 0x50
	CmdWALAck         = 0x51
	CmdReplStatus     = 0x52
	CmdPromote        = 0x53

	// Two-phase commit (cross-shard transactions; docs/SHARDING.md).
	CmdPrepare        = 0x60
	CmdCommitPrepared = 0x61
	CmdAbortPrepared  = 0x62
	CmdTxStatus       = 0x63
	CmdShardStatus    = 0x64

	RespOK       = 0x80
	RespErr      = 0x81
	RespOID      = 0x82
	RespObject   = 0x83
	RespVersion  = 0x84
	RespVersions = 0x85
	RespBatch    = 0x86
	RespDone     = 0x87
	RespText     = 0x88

	RespWALFrame     = 0x90
	RespWALSnapBegin = 0x91
	RespWALSnapEnd   = 0x92
	RespReplStatus   = 0x93
	RespWALHeartbeat = 0x94

	RespTxStatus    = 0x95
	RespShardStatus = 0x96
)

// CmdName names a message type for metrics and diagnostics.
func CmdName(t byte) string {
	switch t {
	case CmdPing:
		return "ping"
	case CmdBegin:
		return "begin"
	case CmdCommit:
		return "commit"
	case CmdAbort:
		return "abort"
	case CmdPNew:
		return "pnew"
	case CmdDeref:
		return "deref"
	case CmdDerefCached:
		return "deref-cached"
	case CmdUpdate:
		return "update"
	case CmdPDelete:
		return "pdelete"
	case CmdCurrentVersion, CmdNewVersion, CmdDeleteVersion, CmdVersions, CmdDerefVersion:
		return "version"
	case CmdForall:
		return "forall"
	case CmdExplain:
		return "explain"
	case CmdOQL:
		return "oql"
	case CmdMetrics:
		return "metrics"
	case CmdWALSubscribe:
		return "wal-subscribe"
	case CmdWALAck:
		return "wal-ack"
	case CmdReplStatus:
		return "repl-status"
	case CmdPromote:
		return "promote"
	case CmdPrepare:
		return "prepare"
	case CmdCommitPrepared:
		return "commit-prepared"
	case CmdAbortPrepared:
		return "abort-prepared"
	case CmdTxStatus:
		return "tx-status"
	case CmdShardStatus:
		return "shard-status"
	}
	return fmt.Sprintf("cmd(0x%02x)", t)
}

// Forall request flags.
const (
	ForallSubtypes = 1 << 0 // include subclass extents (person*)
	ForallNoIndex  = 1 << 1 // force an extent scan
)

// Framing errors. ErrCRC and ErrFrameTooLarge poison the connection:
// after either, the stream offset is untrustworthy.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrCRC           = errors.New("wire: frame CRC mismatch")
	ErrMalformed     = errors.New("wire: malformed frame")
	ErrBadMagic      = errors.New("wire: bad protocol magic")
	ErrVersion       = errors.New("wire: unsupported protocol version")
)

// Frame is one decoded protocol frame.
type Frame struct {
	ReqID uint64
	Type  byte
	Body  []byte
}

// AppendFrame serializes f onto dst.
func AppendFrame(dst []byte, f *Frame) []byte {
	n := payloadMin + len(f.Body)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	start := len(dst)
	dst = binary.BigEndian.AppendUint64(dst, f.ReqID)
	dst = append(dst, f.Type)
	dst = append(dst, f.Body...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// WriteFrame serializes f to w, returning the bytes written.
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	buf := AppendFrame(make([]byte, 0, frameOverhead+payloadMin+len(f.Body)), f)
	n, err := w.Write(buf)
	return n, err
}

// DecodeFrame parses one frame from the front of b, returning the
// frame and the bytes consumed. io.ErrUnexpectedEOF reports a
// truncated frame (more bytes may complete it); ErrFrameTooLarge,
// ErrMalformed, and ErrCRC report corruption. The returned frame's
// Body aliases b.
func DecodeFrame(b []byte, maxFrame int) (*Frame, int, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(b) < 4 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint32(b))
	if n > maxFrame {
		return nil, 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	if n < payloadMin {
		return nil, 0, fmt.Errorf("%w: payload %d below minimum %d", ErrMalformed, n, payloadMin)
	}
	total := 4 + n + 4
	if len(b) < total {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload := b[4 : 4+n]
	want := binary.BigEndian.Uint32(b[4+n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("%w: got %08x want %08x", ErrCRC, got, want)
	}
	return &Frame{
		ReqID: binary.BigEndian.Uint64(payload),
		Type:  payload[8],
		Body:  payload[9:n],
	}, total, nil
}

// ReadFrame reads one frame from r, returning the frame and the bytes
// consumed. A clean EOF before the first byte is io.EOF; a partial
// frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxFrame int) (*Frame, int, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, 4, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	if n < payloadMin {
		return nil, 4, fmt.Errorf("%w: payload %d below minimum %d", ErrMalformed, n, payloadMin)
	}
	rest := make([]byte, n+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 4, err
	}
	payload := rest[:n]
	want := binary.BigEndian.Uint32(rest[n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 4 + n + 4, fmt.Errorf("%w: got %08x want %08x", ErrCRC, got, want)
	}
	return &Frame{
		ReqID: binary.BigEndian.Uint64(payload),
		Type:  payload[8],
		Body:  payload[9:],
	}, 4 + n + 4, nil
}

// FrameReader reads frames from one stream into a reused buffer,
// eliminating the two per-frame allocations of ReadFrame (payload
// slice and Frame header). The returned frame — and in particular its
// Body — aliases the reader's internal buffer and is valid only until
// the next Read; callers that retain a body across reads must copy it.
type FrameReader struct {
	r   io.Reader
	max int
	hdr [4]byte // length prefix scratch (a local would escape through io.Reader)
	buf []byte
	f   Frame
}

// NewFrameReader wraps r (typically a *bufio.Reader) for repeated
// frame reads; maxFrame <= 0 means DefaultMaxFrame.
func NewFrameReader(r io.Reader, maxFrame int) *FrameReader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameReader{r: r, max: maxFrame}
}

// Read reads one frame, returning the frame and the bytes consumed.
// Error semantics match ReadFrame; the frame is only valid until the
// next Read.
func (fr *FrameReader) Read() (*Frame, int, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return nil, 0, err
	}
	n := int(binary.BigEndian.Uint32(fr.hdr[:]))
	if n > fr.max {
		return nil, 4, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, fr.max)
	}
	if n < payloadMin {
		return nil, 4, fmt.Errorf("%w: payload %d below minimum %d", ErrMalformed, n, payloadMin)
	}
	if cap(fr.buf) < n+4 {
		fr.buf = make([]byte, n+4)
	}
	rest := fr.buf[:n+4]
	if _, err := io.ReadFull(fr.r, rest); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 4, err
	}
	payload := rest[:n]
	want := binary.BigEndian.Uint32(rest[n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 4 + n + 4, fmt.Errorf("%w: got %08x want %08x", ErrCRC, got, want)
	}
	fr.f = Frame{
		ReqID: binary.BigEndian.Uint64(payload),
		Type:  payload[8],
		Body:  payload[9:n:n],
	}
	return &fr.f, 4 + n + 4, nil
}

// WriteHello writes the 6-byte hello (magic, version, flags).
func WriteHello(w io.Writer, version, flags byte) error {
	var b [HelloLen]byte
	copy(b[:], Magic)
	b[4] = version
	b[5] = flags
	_, err := w.Write(b[:])
	return err
}

// ReadHello reads and validates the 6-byte hello, returning the peer's
// version and flags. A version of 0 from a server means the client's
// version was rejected.
func ReadHello(r io.Reader) (version, flags byte, err error) {
	var b [HelloLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, 0, err
	}
	if string(b[:4]) != Magic {
		return 0, 0, ErrBadMagic
	}
	return b[4], b[5], nil
}

// Error codes carried by RespErr frames. Codes map 1:1 onto the
// engine's sentinel errors so a remote caller's errors.Is behaves like
// an embedded caller's.
const (
	CodeUnknown uint16 = iota
	CodeProto          // protocol violation (no open transaction, bad body, ...)
	CodeNoObject
	CodeNoVersion
	CodeNoCluster
	CodeNoClass // class name not in the server's schema
	CodeConstraint
	CodeTxDone
	CodeDeadlock
	CodeTxTimeout
	CodeCanceled
	CodeOverloaded
	CodeDBClosed
	CodeSchema     // image's class id does not match the server's schema
	CodeReadOnly   // write against a read-only replica
	CodeReplResync // subscriber position unserviceable: full resync required
	CodeStaleEpoch // epoch fencing: the peer was deposed by a newer promotion
	CodeFailover   // operation lost to a replication failover in progress
	CodeNoPrepared // two-phase commit: no prepared transaction with that gid
)

// ErrProto reports a request the server could not honor as sent (no
// open transaction, unknown command, malformed body).
var ErrProto = errors.New("wire: protocol error")

// ErrSchema reports a class-id mismatch between the client's and the
// server's registered schemas.
var ErrSchema = errors.New("wire: schema mismatch")

// Code maps an engine error onto its wire code.
func Code(err error) uint16 {
	switch {
	case errors.Is(err, txn.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, txn.ErrDBClosed):
		return CodeDBClosed
	case errors.Is(err, txn.ErrTxTimeout):
		return CodeTxTimeout
	case errors.Is(err, txn.ErrCanceled):
		return CodeCanceled
	case errors.Is(err, txn.ErrDeadlock):
		return CodeDeadlock
	case errors.Is(err, txn.ErrConstraintViolation):
		return CodeConstraint
	case errors.Is(err, txn.ErrTxDone):
		return CodeTxDone
	case errors.Is(err, object.ErrNoObject):
		return CodeNoObject
	case errors.Is(err, object.ErrNoVersion):
		return CodeNoVersion
	case errors.Is(err, object.ErrNoCluster):
		return CodeNoCluster
	case errors.Is(err, object.ErrSchemaMismatch), errors.Is(err, ErrSchema):
		return CodeSchema
	case errors.Is(err, txn.ErrReadOnly):
		return CodeReadOnly
	case errors.Is(err, txn.ErrStaleEpoch):
		return CodeStaleEpoch
	case errors.Is(err, txn.ErrFailover):
		return CodeFailover
	case errors.Is(err, txn.ErrNoPrepared):
		return CodeNoPrepared
	case errors.Is(err, ErrResync):
		return CodeReplResync
	case errors.Is(err, ErrProto):
		return CodeProto
	}
	return CodeUnknown
}

// CodeErr reconstructs a typed error from a wire code and message. The
// result wraps the matching engine sentinel, so errors.Is against
// ode.ErrOverloaded, ode.ErrTxTimeout, etc. holds on the client side.
func CodeErr(code uint16, msg string) error {
	var sentinel error
	switch code {
	case CodeProto:
		sentinel = ErrProto
	case CodeNoObject:
		sentinel = object.ErrNoObject
	case CodeNoVersion:
		sentinel = object.ErrNoVersion
	case CodeNoCluster:
		sentinel = object.ErrNoCluster
	case CodeConstraint:
		sentinel = txn.ErrConstraintViolation
	case CodeTxDone:
		sentinel = txn.ErrTxDone
	case CodeDeadlock:
		sentinel = txn.ErrDeadlock
	case CodeTxTimeout:
		sentinel = txn.ErrTxTimeout
	case CodeCanceled:
		sentinel = txn.ErrCanceled
	case CodeOverloaded:
		sentinel = txn.ErrOverloaded
	case CodeDBClosed:
		sentinel = txn.ErrDBClosed
	case CodeSchema:
		sentinel = ErrSchema
	case CodeNoClass:
		sentinel = ErrNoClass
	case CodeReadOnly:
		sentinel = txn.ErrReadOnly
	case CodeStaleEpoch:
		sentinel = txn.ErrStaleEpoch
	case CodeFailover:
		sentinel = txn.ErrFailover
	case CodeNoPrepared:
		sentinel = txn.ErrNoPrepared
	case CodeReplResync:
		sentinel = ErrResync
	default:
		return fmt.Errorf("wire: remote error: %s", msg)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

// ErrNoClass reports a class name the server's schema does not contain.
var ErrNoClass = errors.New("wire: unknown class")

// ErrResync reports a WAL subscription the primary cannot serve from
// the subscriber's position (unknown replication id, or batches
// truncated past it): the replica must wipe and fully resynchronize.
var ErrResync = errors.New("wire: replica requires full resync")

package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// frameStream encodes a representative mix of frames back to back.
func frameStream() ([]byte, []Frame) {
	frames := []Frame{
		{ReqID: 1, Type: CmdPing},
		{ReqID: 2, Type: CmdDeref, Body: AppendUvarint(nil, 42)},
		{ReqID: 3, Type: RespObject, Body: bytes.Repeat([]byte{0x5a}, 256)},
		{ReqID: 4, Type: RespBatch, Body: bytes.Repeat([]byte{0xab}, 4096)},
	}
	var stream []byte
	for i := range frames {
		stream = AppendFrame(stream, &frames[i])
	}
	return stream, frames
}

// TestFrameReader pins the reused-buffer reader against ReadFrame: the
// same stream must yield identical frames and byte counts, the frame
// must stay valid until the next Read, and corruption must surface the
// same typed errors.
func TestFrameReader(t *testing.T) {
	stream, frames := frameStream()
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	for i := range frames {
		f, n, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		rf, rn, err := ReadFrame(bytes.NewReader(stream), 0)
		_ = rf
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if i == 0 && n != rn {
			t.Fatalf("frame 0: consumed %d bytes, ReadFrame consumed %d", n, rn)
		}
		if f.ReqID != frames[i].ReqID || f.Type != frames[i].Type || !bytes.Equal(f.Body, frames[i].Body) {
			t.Fatalf("frame %d mismatch: %+v", i, f)
		}
		stream = stream[n:]
	}
	if _, _, err := fr.Read(); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}

	// A frame past the size bound is rejected before buffering the body.
	big := AppendFrame(nil, &Frame{ReqID: 9, Type: RespObject, Body: bytes.Repeat([]byte{1}, 64)})
	fr = NewFrameReader(bytes.NewReader(big), 16)
	if _, _, err := fr.Read(); err == nil || !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err=%v, want ErrFrameTooLarge", err)
	}

	// A flipped payload bit fails the checksum.
	corrupt, _ := frameStream()
	corrupt[9] ^= 0xff
	fr = NewFrameReader(bytes.NewReader(corrupt), 0)
	if _, _, err := fr.Read(); err == nil || !errors.Is(err, ErrCRC) {
		t.Fatalf("corrupt frame: err=%v, want ErrCRC", err)
	}
}

// TestFrameRoundTripAllocs asserts the hot path stays allocation-free
// once buffers are warm: AppendFrame into a reused slice and
// FrameReader.Read over its reused buffer. This is the regression
// fence for the low-allocation codec work — tightening is fine,
// loosening needs a reason.
func TestFrameRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race runtime")
	}
	if testing.CoverMode() != "" {
		t.Skip("allocation counts are perturbed by coverage instrumentation")
	}
	stream, frames := frameStream()
	r := bytes.NewReader(stream)
	fr := NewFrameReader(r, 0)
	var out []byte
	round := func() {
		out = out[:0]
		r.Reset(stream)
		for i := 0; i < len(frames); i++ {
			f, _, err := fr.Read()
			if err != nil {
				t.Fatal(err)
			}
			out = AppendFrame(out, f)
		}
	}
	round() // warm the reused buffers
	if allocs := testing.AllocsPerRun(100, round); allocs > 0 {
		t.Fatalf("frame round trip allocates %.1f objects per %d frames, want 0", allocs, len(frames))
	}
}

// BenchmarkFrameRoundTrip measures one encode+decode pass over the
// mixed frame stream. "buffered" is the pre-PR path (bytes.Buffer +
// WriteFrame, per-frame ReadFrame allocations); "reused" is the hot
// path the server and client run now (AppendFrame into a reused slice,
// FrameReader with a reused body buffer).
func BenchmarkFrameRoundTrip(b *testing.B) {
	stream, frames := frameStream()

	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(stream)))
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			for j := range frames {
				if _, err := WriteFrame(&buf, &frames[j]); err != nil {
					b.Fatal(err)
				}
			}
			r := bytes.NewReader(buf.Bytes())
			for j := 0; j < len(frames); j++ {
				if _, _, err := ReadFrame(r, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(stream)))
		r := bytes.NewReader(stream)
		fr := NewFrameReader(r, 0)
		var out []byte
		for i := 0; i < b.N; i++ {
			out = out[:0]
			r.Reset(stream)
			for j := 0; j < len(frames); j++ {
				f, _, err := fr.Read()
				if err != nil {
					b.Fatal(err)
				}
				out = AppendFrame(out, f)
			}
		}
	})
}

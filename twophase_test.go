package ode

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// prepItem opens a transaction that creates one item and prepares it
// under gid, returning the new OID.
func prepItem(t testing.TB, db *DB, stock *Class, gid, name string) OID {
	t.Helper()
	tx := db.Begin()
	o := NewObject(stock)
	o.MustSet("name", Str(name))
	o.MustSet("qty", Int(1))
	o.MustSet("price", Float(1))
	oid, err := tx.PNew(stock, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PrepareTx(tx, gid); err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestPrepareCommitPrepared(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := prepItem(t, db, stock, "g-commit", "widget")

	// Prepared: in-doubt, lock-protected, listed. A reader blocks on
	// the prepared write lock rather than observing either outcome.
	if st := db.TxStatus("g-commit"); st != TxStatusPrepared {
		t.Fatalf("status = %q, want prepared", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	if err := db.ViewCtx(ctx, func(tx *Tx) error {
		_, err := tx.Deref(oid)
		return err
	}); err == nil {
		t.Fatal("prepared write visible before decision")
	}
	cancel()
	list := db.PreparedTxs()
	if len(list) != 1 || list[0].GID != "g-commit" || list[0].Ops != 1 || list[0].Recovered {
		t.Fatalf("PreparedTxs = %+v", list)
	}

	lsn, err := db.CommitPrepared("g-commit")
	if err != nil {
		t.Fatal(err)
	}
	if lsn == 0 {
		t.Fatal("commit LSN = 0 for a write batch")
	}
	if st := db.TxStatus("g-commit"); st != TxStatusCommitted {
		t.Fatalf("status = %q, want committed", st)
	}
	// Redelivery is idempotent and answers with the original LSN.
	again, err := db.CommitPrepared("g-commit")
	if err != nil || again != lsn {
		t.Fatalf("redelivery = (%d, %v), want (%d, nil)", again, err, lsn)
	}
	// Applied and unlocked.
	if err := db.RunTx(func(tx *Tx) error {
		o, err := tx.Deref(oid)
		if err != nil {
			return err
		}
		o.MustSet("qty", Int(2))
		return tx.Update(oid, o)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareAbortPrepared(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := prepItem(t, db, stock, "g-abort", "widget")

	if err := db.AbortPrepared("g-abort"); err != nil {
		t.Fatal(err)
	}
	if st := db.TxStatus("g-abort"); st != TxStatusAborted {
		t.Fatalf("status = %q, want aborted", st)
	}
	if err := db.View(func(tx *Tx) error {
		_, err := tx.Deref(oid)
		return err
	}); err == nil {
		t.Fatal("aborted prepared write applied")
	}
	// Unknown gids: abort succeeds (presumed abort), commit refuses.
	if err := db.AbortPrepared("never-prepared"); err != nil {
		t.Fatalf("abort unknown gid: %v", err)
	}
	if _, err := db.CommitPrepared("never-prepared"); !errors.Is(err, ErrNoPrepared) {
		t.Fatalf("commit unknown gid = %v, want ErrNoPrepared", err)
	}
	// Commit after abort refuses too: the decision is already made.
	if _, err := db.CommitPrepared("g-abort"); !errors.Is(err, ErrNoPrepared) {
		t.Fatalf("commit after abort = %v, want ErrNoPrepared", err)
	}
}

// TestPreparedHoldsLocks checks the 2PL half of the protocol: a
// prepared transaction's write locks survive until the decision.
func TestPreparedHoldsLocks(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := addItem(t, db, stock, "locked", 5, 1)

	tx := db.Begin()
	o, err := tx.Deref(oid)
	if err != nil {
		t.Fatal(err)
	}
	o.MustSet("qty", Int(6))
	if err := tx.Update(oid, o); err != nil {
		t.Fatal(err)
	}
	if err := db.PrepareTx(tx, "g-locks"); err != nil {
		t.Fatal(err)
	}

	// A second writer must block on the prepared lock and time out.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	err = db.RunTxCtx(ctx, func(tx *Tx) error {
		o, err := tx.Deref(oid)
		if err != nil {
			return err
		}
		o.MustSet("qty", Int(9))
		return tx.Update(oid, o)
	})
	cancel()
	if err == nil {
		t.Fatal("conflicting write succeeded while transaction was prepared")
	}

	if _, err := db.CommitPrepared("g-locks"); err != nil {
		t.Fatal(err)
	}
	// Decision released the locks.
	if err := db.View(func(tx *Tx) error {
		o, err := tx.Deref(oid)
		if err != nil {
			return err
		}
		if got := o.MustGet("qty").Int(); got != 6 {
			t.Fatalf("qty = %d, want 6", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedSurvivesCrash is the heart of the participant contract:
// a yes vote, once given, survives a crash — the transaction comes
// back in-doubt with its locks held and its OIDs fenced, and the
// coordinator's decision still lands.
func TestPreparedSurvivesCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prep.odb")
	var oid OID
	crashAfter(t, path, func(db *DB, stock *Class) {
		oid = prepItem(t, db, stock, "s9-crash-1", "phoenix")
	})

	db, stock := reopen(t, path)
	list := db.PreparedTxs()
	if len(list) != 1 || list[0].GID != "s9-crash-1" || !list[0].Recovered {
		t.Fatalf("PreparedTxs after crash = %+v", list)
	}
	if st := db.TxStatus("s9-crash-1"); st != TxStatusPrepared {
		t.Fatalf("status = %q, want prepared", st)
	}
	// The recovered in-doubt OID must be fenced against reuse.
	other := addItem(t, db, stock, "bystander", 1, 1)
	if other == oid {
		t.Fatalf("allocator reused in-doubt oid %d", oid)
	}
	if _, err := db.CommitPrepared("s9-crash-1"); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		o, err := tx.Deref(oid)
		if err != nil {
			return err
		}
		if o.MustGet("name").Str() != "phoenix" {
			t.Fatalf("wrong object recovered: %v", o)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedSurvivesCleanClose: a clean shutdown does not resolve a
// distributed vote — the prepared record must outlive Close's final
// checkpoint and truncation.
func TestPreparedSurvivesCleanClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prep.odb")
	schema, stock := inventorySchema()
	db, err := Open(path, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateCluster(stock); err != nil {
		t.Fatal(err)
	}
	oid := prepItem(t, db, stock, "s9-clean-1", "sleeper")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, _ := reopen(t, path)
	if st := db2.TxStatus("s9-clean-1"); st != TxStatusPrepared {
		t.Fatalf("status after clean close = %q, want prepared", st)
	}
	if err := db2.AbortPrepared("s9-clean-1"); err != nil {
		t.Fatal(err)
	}
	if err := db2.View(func(tx *Tx) error {
		if _, err := tx.Deref(oid); err == nil {
			t.Fatal("aborted prepared write applied after clean-close recovery")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedSurvivesCheckpoint: checkpoints must not truncate away a
// vote, and a committed decision must survive later crashes.
func TestPreparedSurvivesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prep.odb")
	var oid OID
	crashAfter(t, path, func(db *DB, stock *Class) {
		oid = prepItem(t, db, stock, "s9-ckpt-1", "durable")
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	})
	db, _ := reopen(t, path)
	if st := db.TxStatus("s9-ckpt-1"); st != TxStatusPrepared {
		t.Fatalf("status = %q, want prepared (checkpoint ate the vote?)", st)
	}
	if _, err := db.CommitPrepared("s9-ckpt-1"); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		_, err := tx.Deref(oid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareTimeoutCoordinatorOnly: the orphan timeout may only fire
// on the gid's coordinator shard — a participant holding a foreign
// vote waits for resolution no matter how stale it gets.
func TestPrepareTimeoutCoordinatorOnly(t *testing.T) {
	db, stock := openTestDB(t, &Options{
		ShardCount:     2,
		ShardSlot:      0,
		PrepareTimeout: 50 * time.Millisecond,
	})
	// Coordinator gid (s0- matches our slot): presumed abort fires.
	prepItem(t, db, stock, "s0-own-1", "timed")
	deadline := time.Now().Add(5 * time.Second)
	for db.TxStatus("s0-own-1") != TxStatusAborted {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator prepare never timed out; status %q", db.TxStatus("s0-own-1"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Participant gid (s1- names another coordinator): must stay
	// in-doubt well past the timeout.
	prepItem(t, db, stock, "s1-other-1", "patient")
	time.Sleep(250 * time.Millisecond)
	if st := db.TxStatus("s1-other-1"); st != TxStatusPrepared {
		t.Fatalf("participant presumed abort on its own: status %q", st)
	}
	if err := db.AbortPrepared("s1-other-1"); err != nil {
		t.Fatal(err)
	}
}

// TestShardOIDStriding: a sharded node only allocates OIDs that route
// back to it.
func TestShardOIDStriding(t *testing.T) {
	db, stock := openTestDB(t, &Options{ShardCount: 3, ShardSlot: 1})
	for i := 0; i < 10; i++ {
		oid := addItem(t, db, stock, "striped", int64(i), 1)
		if uint64(oid)%3 != 1 {
			t.Fatalf("oid %d does not route to slot 1 of 3", oid)
		}
	}
}

// TestReadOnlyPreparedDecisionSurvivesCrash: the decide record, not
// the batch, is the global commit point — a committed decision for a
// prepared transaction with an empty write set must survive a crash
// (a read-only coordinator is routine: the router picks the lowest
// touched shard, written or not), or in-doubt writer participants
// would later be presumed aborted against an acked commit.
func TestReadOnlyPreparedDecisionSurvivesCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prep.odb")
	crashAfter(t, path, func(db *DB, stock *Class) {
		oid := addItem(t, db, stock, "read", 1, 1)
		tx := db.Begin()
		if _, err := tx.Deref(oid); err != nil {
			t.Fatal(err)
		}
		if err := db.PrepareTx(tx, "s0-ro-crash-1"); err != nil {
			t.Fatal(err)
		}
		lsn, err := db.CommitPrepared("s0-ro-crash-1")
		if err != nil {
			t.Fatal(err)
		}
		if lsn != 0 {
			t.Fatalf("read-only prepared commit LSN = %d, want 0", lsn)
		}
	})
	db, _ := reopen(t, path)
	if st := db.TxStatus("s0-ro-crash-1"); st != TxStatusCommitted {
		t.Fatalf("status after crash = %q, want committed", st)
	}
}

// TestPreparedEmptyTx: preparing a read-only transaction votes yes
// with nothing to make durable; both decisions are trivial.
func TestPreparedEmptyTx(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := addItem(t, db, stock, "read", 1, 1)

	tx := db.Begin()
	if _, err := tx.Deref(oid); err != nil {
		t.Fatal(err)
	}
	if err := db.PrepareTx(tx, "g-empty"); err != nil {
		t.Fatal(err)
	}
	lsn, err := db.CommitPrepared("g-empty")
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 0 {
		t.Fatalf("read-only prepared commit LSN = %d, want 0", lsn)
	}
}

package ode

import (
	"fmt"

	"ode/internal/storage"
	"ode/internal/wal"
)

// compactBatchPages bounds how many heap-chain pages one commit-lock
// hold examines, so concurrent transactions only ever wait for a small
// slice of the pass.
const compactBatchPages = 32

// CompactStats reports one Compact pass.
type CompactStats struct {
	// PagesVisited counts heap-chain pages examined.
	PagesVisited int
	// RecordsMoved counts live records relocated off drained pages.
	RecordsMoved int
	// PagesReclaimed counts pages returned to the data file's free
	// list, available for reuse by any component.
	PagesReclaimed int
}

// Compact runs one online compaction pass over the object heap:
// deletes only tombstone records in place, so a churn-heavy workload
// leaves the page file full of sparse pages that still pin disk space.
// Compact drains pages that are empty or nearly so (live payload at or
// below a quarter page), relocating surviving records and returning the
// emptied pages to the file's free list for reuse.
//
// The pass is safe against concurrent transactions: it works in bounded
// steps, each holding the commit lock only long enough to examine a
// few dozen pages, and each step logs redo records for the moves before
// touching any page, so a crash at any point recovers to a consistent
// state. Passes are serialized; a second Compact blocks until the
// first finishes. The pass ends with a checkpoint, which flushes the
// relocations and truncates the redo records from the WAL.
//
// Compact fails with ErrReadOnly on a replica (its WAL must stay a
// byte-for-byte copy of the primary's) and ErrDBClosed during
// shutdown.
func (db *DB) Compact() (CompactStats, error) {
	var stats CompactStats
	if db.closing.Load() {
		return stats, ErrDBClosed
	}
	if db.engine.ReadOnly() {
		return stats, fmt.Errorf("%w: compaction runs on the primary", ErrReadOnly)
	}
	db.compactMu.Lock()
	defer db.compactMu.Unlock()

	cursor := storage.InvalidPage
	first := true
	for first || cursor != storage.InvalidPage {
		first = false
		err := db.engine.WithCommitLock(func() error {
			res, err := db.mgr.CompactStep(cursor, compactBatchPages, func(ops []wal.Op) error {
				if len(ops) == 0 {
					// Even a step that only frees empty pages must leave
					// the WAL non-empty: the on-disk mutations that
					// follow are only safe if a crash forces the
					// recovery rebuild. OID 0 is never allocated, so
					// this replays as a no-op.
					ops = []wal.Op{{Type: wal.OpDeleteVersion, OID: 0, Version: 0}}
				}
				return db.engine.AppendSideBatch(ops)
			})
			stats.PagesVisited += res.PagesVisited
			stats.RecordsMoved += res.RecordsMoved
			stats.PagesReclaimed += res.PagesFreed
			for i := 0; i < res.PagesFreed; i++ {
				db.met.Storage.PagesReclaimed.Inc()
			}
			cursor = res.Next
			return err
		})
		if err != nil {
			return stats, err
		}
		if db.closing.Load() {
			return stats, ErrDBClosed
		}
	}
	db.met.Storage.Compactions.Inc()
	// Flush the relocations and drop the pass's redo records from the
	// log. Not fatal if the retention gate or an IO error skips it —
	// the WAL still replays to the same state.
	if err := db.Checkpoint(); err != nil {
		return stats, err
	}
	return stats, nil
}

package ode

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// TestRandomizedCrashConsistency is the reproduction's crash-safety
// property test: run a random sequence of committed transactions
// (creates, updates, deletes, version snapshots) against both the
// database and an in-memory model, crash at a random point (sometimes
// right after a checkpoint), reopen, and require the recovered state
// to equal the model exactly.
func TestRandomizedCrashConsistency(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			path := filepath.Join(t.TempDir(), "fuzz.odb")

			type modelObj struct {
				qty      int64
				versions map[uint32]int64 // frozen version -> qty at freeze
				cur      uint32
			}
			model := make(map[OID]*modelObj)
			var live []OID

			open := func() (*DB, *Class) {
				schema, stock := inventorySchema()
				db, err := Open(path, schema, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !db.HasCluster(stock) {
					if err := db.CreateCluster(stock); err != nil {
						t.Fatal(err)
					}
				}
				return db, stock
			}

			db, stock := open()
			const steps = 300
			for i := 0; i < steps; i++ {
				switch op := r.Intn(10); {
				case op < 4 || len(live) == 0: // create
					var oid OID
					qty := int64(r.Intn(1000))
					err := db.RunTx(func(tx *Tx) error {
						o := NewObject(stock)
						o.MustSet("name", Str(fmt.Sprintf("o%d", i)))
						o.MustSet("qty", Int(qty))
						var err error
						oid, err = tx.PNew(stock, o)
						return err
					})
					if err != nil {
						t.Fatal(err)
					}
					model[oid] = &modelObj{qty: qty, versions: map[uint32]int64{}}
					live = append(live, oid)
				case op < 7: // update
					oid := live[r.Intn(len(live))]
					qty := int64(r.Intn(1000))
					err := db.RunTx(func(tx *Tx) error {
						o, err := tx.Deref(oid)
						if err != nil {
							return err
						}
						o.MustSet("qty", Int(qty))
						return tx.Update(oid, o)
					})
					if err != nil {
						t.Fatal(err)
					}
					model[oid].qty = qty
				case op < 8: // snapshot a version
					oid := live[r.Intn(len(live))]
					err := db.RunTx(func(tx *Tx) error {
						_, err := tx.NewVersion(oid)
						return err
					})
					if err != nil {
						t.Fatal(err)
					}
					m := model[oid]
					m.versions[m.cur] = m.qty
					m.cur++
				case op < 9: // delete
					k := r.Intn(len(live))
					oid := live[k]
					if err := db.RunTx(func(tx *Tx) error { return tx.PDelete(oid) }); err != nil {
						t.Fatal(err)
					}
					delete(model, oid)
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				default: // checkpoint sometimes
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				// Random mid-run crash.
				if i == steps/2 && r.Intn(2) == 0 {
					db.CrashForTesting()
					db, stock = open()
				}
			}
			// Final crash and recovery.
			db.CrashForTesting()
			db, stock = open()
			defer db.Close()

			err := db.View(func(tx *Tx) error {
				n, err := Forall(tx, stock).Count()
				if err != nil {
					return err
				}
				if n != len(model) {
					return fmt.Errorf("recovered %d objects, model has %d", n, len(model))
				}
				for oid, m := range model {
					o, err := tx.Deref(oid)
					if err != nil {
						return fmt.Errorf("object @%d lost: %w", oid, err)
					}
					if got := o.MustGet("qty").Int(); got != m.qty {
						return fmt.Errorf("@%d qty = %d, model %d", oid, got, m.qty)
					}
					cur, err := tx.CurrentVersion(oid)
					if err != nil {
						return err
					}
					if cur != m.cur {
						return fmt.Errorf("@%d current version = %d, model %d", oid, cur, m.cur)
					}
					vs, err := tx.Versions(oid)
					if err != nil {
						return err
					}
					if len(vs) != len(m.versions) {
						return fmt.Errorf("@%d has %d frozen versions, model %d", oid, len(vs), len(m.versions))
					}
					for v, wantQty := range m.versions {
						fo, err := tx.DerefVersion(VRef{OID: oid, Version: v})
						if err != nil {
							return fmt.Errorf("@%d version %d lost: %w", oid, v, err)
						}
						if got := fo.MustGet("qty").Int(); got != wantQty {
							return fmt.Errorf("@%d v%d qty = %d, model %d", oid, v, got, wantQty)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentTransfersPreserveInvariant runs the classic bank
// workload: concurrent transfers between accounts must preserve the
// total (serializability under strict 2PL) and never violate the
// non-negative constraint.
func TestConcurrentTransfersPreserveInvariant(t *testing.T) {
	schema := NewSchema()
	acct := NewClass("acct").
		Field("bal", TInt).
		Constraint("nonneg", "bal >= 0", func(_ Store, o *Object) (bool, error) {
			return o.MustGet("bal").Int() >= 0, nil
		}).
		Register(schema)
	db, err := Open(filepath.Join(t.TempDir(), "bank.odb"), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateCluster(acct); err != nil {
		t.Fatal(err)
	}

	const nAccts = 8
	const initial = 1000
	var oids []OID
	err = db.RunTx(func(tx *Tx) error {
		for i := 0; i < nAccts; i++ {
			o := NewObject(acct)
			o.MustSet("bal", Int(initial))
			oid, err := tx.PNew(acct, o)
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const transfersPerWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < transfersPerWorker; i++ {
				from := oids[r.Intn(nAccts)]
				to := oids[r.Intn(nAccts)]
				if from == to {
					continue
				}
				amount := int64(r.Intn(200))
				// RunTx retries deadlock victims.
				err := db.RunTx(func(tx *Tx) error {
					fo, err := tx.Deref(from)
					if err != nil {
						return err
					}
					if fo.MustGet("bal").Int() < amount {
						return nil // insufficient funds: no-op commit
					}
					fo.MustSet("bal", Int(fo.MustGet("bal").Int()-amount))
					if err := tx.Update(from, fo); err != nil {
						return err
					}
					too, err := tx.Deref(to)
					if err != nil {
						return err
					}
					too.MustSet("bal", Int(too.MustGet("bal").Int()+amount))
					return tx.Update(to, too)
				})
				if err != nil {
					t.Errorf("transfer failed: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	var total int64
	err = db.View(func(tx *Tx) error {
		for _, oid := range oids {
			o, err := tx.Deref(oid)
			if err != nil {
				return err
			}
			bal := o.MustGet("bal").Int()
			if bal < 0 {
				t.Errorf("negative balance %d", bal)
			}
			total += bal
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != nAccts*initial {
		t.Fatalf("total = %d, want %d (money created or destroyed)", total, nAccts*initial)
	}
}

// TestConcurrentReadersDuringWrites checks reader/writer isolation: a
// scanning reader never observes a torn multi-object update (two
// objects whose values must always sum to a constant).
func TestConcurrentReadersDuringWrites(t *testing.T) {
	db, stock := openTestDB(t, nil)
	a := addItem(t, db, stock, "a", 500, 1)
	b := addItem(t, db, stock, "b", 500, 1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
			}
			delta := int64(r.Intn(100))
			db.RunTx(func(tx *Tx) error {
				ao, err := tx.Deref(a)
				if err != nil {
					return err
				}
				if ao.MustGet("qty").Int() < delta {
					return nil
				}
				ao.MustSet("qty", Int(ao.MustGet("qty").Int()-delta))
				if err := tx.Update(a, ao); err != nil {
					return err
				}
				bo, err := tx.Deref(b)
				if err != nil {
					return err
				}
				bo.MustSet("qty", Int(bo.MustGet("qty").Int()+delta))
				return tx.Update(b, bo)
			})
		}
	}()

	for i := 0; i < 100; i++ {
		err := db.RunTx(func(tx *Tx) error {
			ao, err := tx.Deref(a)
			if err != nil {
				return err
			}
			bo, err := tx.Deref(b)
			if err != nil {
				return err
			}
			if sum := ao.MustGet("qty").Int() + bo.MustGet("qty").Int(); sum != 1000 {
				t.Errorf("torn read: sum = %d", sum)
			}
			return nil
		})
		if err != nil && err != ErrDeadlock {
			// Deadlock with the writer is possible (S then S on two
			// objects vs X/X); RunTx already retried, other errors are
			// real.
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

package ode_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ode/internal/workload"
)

// These tests pin the contract between the JSON reports ode-bench
// writes and the awk extraction in ci/gate_lib.sh that both CI gates
// (ci/bench_gate.sh, ci/workload_gate.sh) diff baselines with. If a
// report format change breaks the scan, it fails here instead of
// silently turning the gates into no-ops.

// gateRow invokes the shared extractor exactly as the gate scripts do.
func gateRow(t *testing.T, file, metric string, conds ...string) string {
	t.Helper()
	args := append([]string{"-c", `. ci/gate_lib.sh && gate_row "$@"`, "gate_row", file, metric}, conds...)
	out, err := exec.Command("bash", args...).CombinedOutput()
	if err != nil {
		t.Fatalf("gate_row %s %s %v: %v\n%s", file, metric, conds, err, out)
	}
	return strings.TrimSpace(string(out))
}

// decodeRows reads a gate-format report (indented array of flat row
// objects) preserving numeric literals, so the expected values compare
// byte-for-byte with what the awk scan prints.
func decodeRows(t *testing.T, file string) []map[string]any {
	t.Helper()
	f, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.UseNumber()
	var rows []map[string]any
	if err := dec.Decode(&rows); err != nil {
		t.Fatalf("decode %s: %v", file, err)
	}
	return rows
}

// TestGateRowBenchBaseline asserts ci/bench_gate.sh's extraction path:
// the two E16 checks it performs against the committed BENCH_3.json
// must pull the same ns_per_op values a real JSON decode sees. The
// serial-fsync workload name contains spaces — the case that forces
// gate_row's KEY=VAL conds to allow them.
func TestGateRowBenchBaseline(t *testing.T) {
	rows := decodeRows(t, "BENCH_3.json")
	for _, name := range []string{"tx20 pnew serial-fsync", "tx20 pnew group-commit"} {
		var want string
		for _, r := range rows {
			if r["workload"] == name && r["workers"] == json.Number("4") {
				want = r["ns_per_op"].(json.Number).String()
				break
			}
		}
		if want == "" {
			t.Fatalf("BENCH_3.json has no row workload=%q workers=4", name)
		}
		got := gateRow(t, "BENCH_3.json", "ns_per_op", "workload="+name, "workers=4")
		if got != want {
			t.Errorf("gate_row(%q) = %q, json decode sees %q", name, got, want)
		}
	}
}

// TestGateRowWorkloadReport asserts ci/workload_gate.sh's extraction
// path against a report built by the workload package itself: both
// metrics the gate checks (ops_per_sec throughput, exact ops), row
// selection by (workload, mode) when the same workload appears in both
// transports, and empty output for a row that does not exist.
func TestGateRowWorkloadReport(t *testing.T) {
	reps := []*workload.Report{
		{Workload: "points", Mode: "embedded", Seed: 1, Workers: 4, Short: true,
			Ops: 4000, NsTotal: 196e6, NsPerOp: 49000, OpsPerSec: 20412.5,
			OpCounts: map[string]int64{"deref.hot": 3200, "ops": 1}},
		{Workload: "points", Mode: "remote", Seed: 1, Workers: 4, Short: true,
			Ops: 4000, NsTotal: 312e6, NsPerOp: 78000, OpsPerSec: 12840.25,
			OpCounts: map[string]int64{"deref.hot": 3200}},
	}
	buf, err := workload.EncodeReports(reps)
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(file, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	if got := gateRow(t, file, "ops_per_sec", "workload=points", "mode=embedded"); got != "20412.5" {
		t.Errorf("embedded ops_per_sec = %q, want 20412.5", got)
	}
	if got := gateRow(t, file, "ops_per_sec", "workload=points", "mode=remote"); got != "12840.25" {
		t.Errorf("remote ops_per_sec = %q, want 12840.25", got)
	}
	// The op_counts map deliberately carries a kind named "ops": the
	// row-level metric must win because it marshals first.
	if got := gateRow(t, file, "ops", "workload=points", "mode=embedded"); got != "4000" {
		t.Errorf("embedded ops = %q, want 4000", got)
	}
	if got := gateRow(t, file, "ops", "workload=points", "mode=loopback"); got != "" {
		t.Errorf("missing row returned %q, want empty", got)
	}
}

// TestGateRecordMin asserts the RECORD=1 merge: the recorded baseline
// must carry, row by row, the minimum ops_per_sec across the runs —
// and stay a decodable gate-format report with every other field taken
// from the first run.
func TestGateRecordMin(t *testing.T) {
	mk := func(tps ...float64) string {
		var reps []*workload.Report
		for i, tp := range tps {
			reps = append(reps, &workload.Report{
				Workload: []string{"points", "bom"}[i], Mode: "embedded",
				Seed: 1, Workers: 4, Short: true,
				Ops: int64(1000 * (i + 1)), OpsPerSec: tp,
				OpCounts: map[string]int64{"op": 1},
			})
		}
		buf, err := workload.EncodeReports(reps)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.CreateTemp(t.TempDir(), "rep-*.json")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
		return f.Name()
	}
	r1 := mk(2000.5, 900)  // hot points sample
	r2 := mk(1500.25, 950) // slowest points, fastest bom
	out := filepath.Join(t.TempDir(), "baseline.json")
	cmd := exec.Command("bash", "-c", `. ci/gate_lib.sh && gate_record_min "$@"`, "gate_record_min", out, r1, r2)
	if o, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("gate_record_min: %v\n%s", err, o)
	}
	rows := decodeRows(t, out)
	if len(rows) != 2 {
		t.Fatalf("merged baseline has %d rows, want 2", len(rows))
	}
	for i, want := range []string{"1500.25", "900"} {
		if got := rows[i]["ops_per_sec"].(json.Number).String(); got != want {
			t.Errorf("row %d ops_per_sec = %s, want %s (per-row min)", i, got, want)
		}
	}
	// Non-throughput fields come from the first run.
	if got := rows[0]["ops"].(json.Number).String(); got != "1000" {
		t.Errorf("row 0 ops = %s, want 1000 (from first report)", got)
	}
	// And the gate's own extractor still reads the merged file.
	if got := gateRow(t, out, "ops_per_sec", "workload=points", "mode=embedded"); got != "1500.25" {
		t.Errorf("gate_row on merged baseline = %q, want 1500.25", got)
	}
}

// TestGateRowWorkloadBaseline keeps the committed baseline honest: every
// row in WORKLOAD_BASELINE.json must be extractable by the gate with
// the values a real JSON decode sees.
func TestGateRowWorkloadBaseline(t *testing.T) {
	rows := decodeRows(t, "WORKLOAD_BASELINE.json")
	if len(rows) == 0 {
		t.Fatal("WORKLOAD_BASELINE.json is empty")
	}
	for _, r := range rows {
		wl, mode := r["workload"].(string), r["mode"].(string)
		for _, metric := range []string{"ops", "ops_per_sec"} {
			want := r[metric].(json.Number).String()
			if got := gateRow(t, "WORKLOAD_BASELINE.json", metric, "workload="+wl, "mode="+mode); got != want {
				t.Errorf("%s/%s %s: gate_row = %q, json decode sees %q", wl, mode, metric, got, want)
			}
		}
	}
}

package ode

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- Admission control -------------------------------------------------

// Park n transactions on admission slots; they hold the slots until
// release is closed. Returns after all n are admitted and running.
func parkTransactions(t *testing.T, db *DB, n int, release <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	var admitted, done sync.WaitGroup
	for i := 0; i < n; i++ {
		admitted.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			err := db.View(func(tx *Tx) error {
				admitted.Done()
				<-release
				return nil
			})
			if err != nil {
				t.Errorf("parked view: %v", err)
			}
		}()
	}
	admitted.Wait()
	return &done
}

func TestOverloadFastTypedRejection(t *testing.T) {
	const slots = 4
	db, stock := openTestDB(t, &Options{MaxConcurrentTx: slots, MaxQueuedTx: -1})

	release := make(chan struct{})
	done := parkTransactions(t, db, slots, release)

	// 8x the cap. With the queue disabled every one of these must come
	// back immediately with the typed rejection — no lock-queue pile-up.
	const burst = 8 * slots
	var rejected atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := db.RunTx(func(tx *Tx) error {
				o := NewObject(stock)
				o.MustSet("name", Str("x"))
				o.MustSet("qty", Int(1))
				o.MustSet("price", Float(1))
				_, err := tx.PNew(stock, o)
				return err
			})
			if errors.Is(err, ErrOverloaded) {
				rejected.Add(1)
			} else {
				t.Errorf("want ErrOverloaded, got %v", err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if got := rejected.Load(); got != burst {
		t.Fatalf("rejected %d of %d over-capacity transactions", got, burst)
	}
	// "Fast": rejections must not have waited behind the parked
	// transactions (which hold their slots far longer than this bound).
	if elapsed > 2*time.Second {
		t.Fatalf("rejections took %v; admission is queueing, not rejecting", elapsed)
	}
	st := db.Stats()
	if st.Txn.AdmissionRejects < burst {
		t.Fatalf("Txn.AdmissionRejects = %d, want >= %d", st.Txn.AdmissionRejects, burst)
	}
	if st.Txn.AdmissionActive != slots {
		t.Fatalf("Txn.AdmissionActive = %d, want %d", st.Txn.AdmissionActive, slots)
	}

	close(release)
	done.Wait()

	// Slots freed: work is admitted again.
	if err := db.RunTx(func(tx *Tx) error {
		o := NewObject(stock)
		o.MustSet("name", Str("after"))
		o.MustSet("qty", Int(1))
		o.MustSet("price", Float(1))
		_, err := tx.PNew(stock, o)
		return err
	}); err != nil {
		t.Fatalf("post-overload transaction: %v", err)
	}
	if got := db.Stats().Txn.AdmissionActive; got != 0 {
		t.Fatalf("Txn.AdmissionActive = %d after drain, want 0", got)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	db, stock := openTestDB(t, &Options{MaxConcurrentTx: 1, MaxQueuedTx: 1})
	release := make(chan struct{})
	done := parkTransactions(t, db, 1, release)

	// This transaction queues behind the parked one...
	queued := make(chan error, 1)
	go func() {
		queued <- db.RunTx(func(tx *Tx) error {
			_, err := tx.PNew(stock, mustStock(stock, "queued", 1))
			return err
		})
	}()
	waitUntil(t, func() bool { return db.Stats().Txn.AdmissionWaits >= 1 })

	// ...and is admitted, not rejected, once the slot frees.
	close(release)
	done.Wait()
	if err := <-queued; err != nil {
		t.Fatalf("queued transaction: %v", err)
	}
}

func TestAdmissionQueueHonorsDeadline(t *testing.T) {
	db, stock := openTestDB(t, &Options{MaxConcurrentTx: 1, MaxQueuedTx: 1})
	release := make(chan struct{})
	defer close(release)
	parkTransactions(t, db, 1, release)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := db.RunTxCtx(ctx, func(tx *Tx) error {
		_, err := tx.PNew(stock, mustStock(stock, "never", 1))
		return err
	})
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("queued-past-deadline error = %v, want ErrTxTimeout", err)
	}
}

// --- Deadlines at lock waits -------------------------------------------

func TestLockWaitDeadline(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := addItem(t, db, stock, "dram", 100, 0.05)

	// A sleeping peer holds the exclusive lock for the whole test.
	release := make(chan struct{})
	held := make(chan struct{})
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		holder := db.Begin()
		defer holder.Abort()
		o, err := holder.Deref(oid)
		if err == nil {
			err = holder.Update(oid, o)
		}
		if err != nil {
			t.Errorf("holder: %v", err)
		}
		close(held)
		<-release
	}()
	<-held
	defer close(release)

	const deadline = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	var victimID uint64
	start := time.Now()
	err := db.RunTxCtx(ctx, func(tx *Tx) error {
		victimID = tx.ID()
		_, err := tx.Deref(oid) // blocks on the holder's X lock
		return err
	})
	elapsed := time.Since(start)

	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("lock-wait past deadline = %v, want ErrTxTimeout", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("victim returned after %v, want within 2x the %v deadline", elapsed, deadline)
	}
	if held := db.engine.Locks().HeldLocks(victimID); len(held) != 0 {
		t.Fatalf("victim %d still holds locks after timeout: %v", victimID, held)
	}
	st := db.Stats()
	if st.Txn.LockWaitTimeouts == 0 {
		t.Fatal("Txn.LockWaitTimeouts = 0 after a timed-out lock wait")
	}
	if st.Txn.Cancels == 0 {
		t.Fatal("Txn.Cancels = 0 after a timed-out transaction")
	}
}

func TestBeginCtxPreCanceled(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := addItem(t, db, stock, "dram", 100, 0.05)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := db.RunTxCtx(ctx, func(tx *Tx) error {
		_, err := tx.Deref(oid)
		return err
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled RunTxCtx = %v, want ErrCanceled", err)
	}
}

func TestScanObservesDeadline(t *testing.T) {
	db, stock := openTestDB(t, nil)
	for i := 0; i < 64; i++ {
		addItem(t, db, stock, "bulk", int64(i), 1.0)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := db.ViewCtx(expired, func(tx *Tx) error {
		_, err := Forall(tx, stock).Count()
		return err
	})
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("expired-deadline scan = %v, want ErrTxTimeout", err)
	}
}

func TestParallelScanObservesCancel(t *testing.T) {
	db, stock := openTestDB(t, nil)
	for i := 0; i < 512; i++ {
		addItem(t, db, stock, "bulk", int64(i), 1.0)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := db.ViewCtx(ctx, func(tx *Tx) error {
		cancel() // cancel between Begin and the scan: no chunk may be visited
		return Forall(tx, stock).Parallel(4).Do(func(it Item) (bool, error) {
			return true, nil
		})
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled parallel scan = %v, want ErrCanceled", err)
	}
}

// --- Bounded WAL growth ------------------------------------------------

func TestWALSoftLimitAutoCheckpoint(t *testing.T) {
	const (
		soft = int64(16 << 10)
		hard = int64(64 << 10)
	)
	db, stock := openTestDB(t, &Options{WALSoftLimit: soft, WALHardLimit: hard, NoSync: true})

	// ~1 KiB per commit, ~400 KiB total: the log must be recycled many
	// times over to stay bounded.
	payload := strings.Repeat("x", 1024)
	// A single committer can overshoot the hard limit by at most one
	// batch (backpressure is checked before the append).
	maxObserved := int64(0)
	for i := 0; i < 400; i++ {
		err := db.RunTx(func(tx *Tx) error {
			o := NewObject(stock)
			o.MustSet("name", Str(payload))
			o.MustSet("qty", Int(int64(i)))
			o.MustSet("price", Float(1))
			_, err := tx.PNew(stock, o)
			return err
		})
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if sz := db.Stats().WALBytes; sz > maxObserved {
			maxObserved = sz
		}
	}

	if slack := hard + 8<<10; maxObserved > slack {
		t.Fatalf("WAL grew to %d bytes, want <= hard limit %d (+one-batch slack)", maxObserved, hard)
	}
	st := db.Stats()
	if st.WAL.AutoCheckpoints == 0 {
		t.Fatal("WAL.AutoCheckpoints = 0 under a soft limit the workload exceeds many times")
	}
	// The data survived all that recycling.
	var n int
	if err := db.View(func(tx *Tx) error {
		var err error
		n, err = Forall(tx, stock).Count()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Fatalf("extent holds %d objects, want 400", n)
	}
}

// --- Close vs. concurrent work -----------------------------------------

func TestCloseRacesRunTx(t *testing.T) {
	db, stock := openTestDB(t, &Options{CloseTimeout: time.Second})
	oid := addItem(t, db, stock, "dram", 100, 0.05)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, 4096)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				err := db.RunTx(func(tx *Tx) error {
					o, err := tx.Deref(oid)
					if err != nil {
						return err
					}
					o.MustSet("qty", Int(o.MustGet("qty").Int()+1))
					return tx.Update(oid, o)
				})
				errs <- err
				if err != nil {
					return
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(errs)

	var committed, rejected int
	for err := range errs {
		switch {
		case err == nil:
			committed++
		case errors.Is(err, ErrDBClosed):
			rejected++
		default:
			t.Fatalf("RunTx racing Close = %v, want nil or ErrDBClosed", err)
		}
	}
	if rejected != workers {
		t.Fatalf("%d workers stopped with ErrDBClosed, want %d", rejected, workers)
	}
	if committed == 0 {
		t.Fatal("no transaction committed before Close")
	}

	// The database reopens cleanly and holds a consistent qty.
	schema2, _ := inventorySchema()
	db2, err := Open(db.Path(), schema2, nil)
	if err != nil {
		t.Fatalf("reopen after racing Close: %v", err)
	}
	defer db2.Close()
	if err := db2.View(func(tx *Tx) error {
		o, err := tx.Deref(oid)
		if err != nil {
			return err
		}
		if got := o.MustGet("qty").Int(); got != 100+int64(committed) {
			t.Errorf("qty = %d, want %d (100 + %d committed increments)", got, 100+int64(committed), committed)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseCancelsParkedTransaction(t *testing.T) {
	db, stock := openTestDB(t, &Options{CloseTimeout: 100 * time.Millisecond})
	oid := addItem(t, db, stock, "dram", 100, 0.05)

	// A transaction parked on a lock it can never get: tx1 holds X and
	// never finishes; tx2 waits with no deadline of its own. Close must
	// cancel tx2 after the drain window instead of hanging.
	tx1 := db.Begin()
	o, err := tx1.Deref(oid)
	if err == nil {
		err = tx1.Update(oid, o)
	}
	if err != nil {
		t.Fatal(err)
	}
	waiting := make(chan struct{})
	res := make(chan error, 1)
	go func() {
		close(waiting)
		res <- db.RunTx(func(tx *Tx) error {
			_, err := tx.Deref(oid)
			return err
		})
	}()
	<-waiting
	waitUntil(t, func() bool { return db.Stats().Txn.LockWaits >= 1 })

	start := time.Now()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v with a transaction parked on a lock", elapsed)
	}
	select {
	case err := <-res:
		if !errors.Is(err, ErrDBClosed) {
			t.Fatalf("parked transaction = %v, want ErrDBClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked transaction still blocked after Close")
	}
	tx1.Abort() // after Close: must not panic
}

// --- Retry policy ------------------------------------------------------

func TestRetryEnvelopeMonotoneToCap(t *testing.T) {
	if got := retryEnvelope(0); got != retryBase {
		t.Fatalf("retryEnvelope(0) = %v, want %v", got, retryBase)
	}
	prev := time.Duration(0)
	capped := false
	for attempt := 0; attempt < 128; attempt++ {
		env := retryEnvelope(attempt)
		if env < prev {
			t.Fatalf("retryEnvelope(%d) = %v < retryEnvelope(%d) = %v; not monotone", attempt, env, attempt-1, prev)
		}
		if env > retryCap {
			t.Fatalf("retryEnvelope(%d) = %v exceeds cap %v", attempt, env, retryCap)
		}
		if capped && env != retryCap {
			t.Fatalf("retryEnvelope(%d) = %v fell below the cap after reaching it", attempt, env)
		}
		capped = capped || env == retryCap
		prev = env
	}
	if !capped {
		t.Fatal("envelope never reached the cap")
	}
}

func TestRetryBackoffJitterBounds(t *testing.T) {
	for attempt := 0; attempt < 32; attempt++ {
		env := retryEnvelope(attempt)
		for i := 0; i < 50; i++ {
			d := retryBackoff(attempt)
			if d < env/2 || d > env {
				t.Fatalf("retryBackoff(%d) = %v outside [%v, %v]", attempt, d, env/2, env)
			}
		}
	}
}

func TestRunTxNoRetryOnConstraintViolation(t *testing.T) {
	db, stock := openTestDB(t, nil)
	calls := 0
	err := db.RunTx(func(tx *Tx) error {
		calls++
		o := NewObject(stock)
		o.MustSet("name", Str("bad"))
		o.MustSet("qty", Int(-1)) // violates nonneg-qty at commit
		o.MustSet("price", Float(1))
		_, err := tx.PNew(stock, o)
		return err
	})
	if !errors.Is(err, ErrConstraintViolation) {
		t.Fatalf("RunTx = %v, want ErrConstraintViolation", err)
	}
	if calls != 1 {
		t.Fatalf("constraint violation retried: fn ran %d times, want 1", calls)
	}
	if IsRetryable(err) {
		t.Fatal("IsRetryable(constraint violation) = true")
	}
}

// A retry loop stopped by its context reports the deadline (or the
// cancellation), not whatever retryable conflict lost the final
// attempt.
func TestRunTxCtxDeadCtxReportsTimeout(t *testing.T) {
	db, _ := openTestDB(t, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := db.RunTxCtx(ctx, func(tx *Tx) error {
		time.Sleep(2 * time.Millisecond)
		return ErrDeadlock // a retryable conflict on every attempt
	})
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("deadline-stopped retry loop = %v, want ErrTxTimeout", err)
	}

	canceled, stop := context.WithCancel(context.Background())
	stop()
	err = db.RunTxCtx(canceled, func(tx *Tx) error { return ErrDeadlock })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancel-stopped retry loop = %v, want ErrCanceled", err)
	}
}

func TestRetryTaxonomy(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{ErrDeadlock, true},
		{ErrTxTimeout, true},
		{ErrCanceled, false},
		{ErrOverloaded, false},
		{ErrDBClosed, false},
		{ErrConstraintViolation, false},
		{ErrNoObject, false},
		{nil, false},
	} {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// --- helpers -----------------------------------------------------------

func mustStock(stock *Class, name string, qty int64) *Object {
	o := NewObject(stock)
	o.MustSet("name", Str(name))
	o.MustSet("qty", Int(qty))
	o.MustSet("price", Float(1))
	return o
}

// waitUntil polls cond for up to 2s.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

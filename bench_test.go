// Benchmarks regenerating the reproduction's evaluation (DESIGN.md §5,
// EXPERIMENTS.md). The source paper is a design paper without measured
// tables; every benchmark here either regenerates one of its worked
// examples (WE §x) or quantifies a performance claim its text makes
// (PC §x). Run with:
//
//	go test -bench=. -benchmem
package ode_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"ode"
	"ode/internal/bench"
)

func mustWorld(b *testing.B, opts *ode.Options) *bench.World {
	b.Helper()
	w, err := bench.NewWorld(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	return w
}

// --- E1 (WE §2.2-2.5): persistent object creation and reopen scan ---

func BenchmarkPersistCreate(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := mustWorld(b, nil)
				b.StartTimer()
				if _, err := w.LoadStock(n); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				w.Close()
			}
		})
	}
}

func BenchmarkReopenScan(b *testing.B) {
	// Build once, then measure close+reopen+full-scan cycles.
	dir, err := os.MkdirTemp("", "ode-reopen")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "x.odb")
	s, w := bench.Schema()
	db, err := ode.Open(path, s, &ode.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	w.DB = db
	for _, c := range []*ode.Class{w.Stock} {
		if err := db.CreateCluster(c); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := w.LoadStock(10000); err != nil {
		b.Fatal(err)
	}
	db.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, w2 := bench.Schema()
		db2, err := ode.Open(path, s2, &ode.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		db2.View(func(tx *ode.Tx) error {
			var err error
			n, err = ode.Forall(tx, w2.Stock).Count()
			return err
		})
		if n != 10000 {
			b.Fatalf("scan found %d", n)
		}
		db2.Close()
	}
}

// --- E2 (PC §3): declarative cluster scan vs CODASYL pointer chase ---

func BenchmarkClusterScan(b *testing.B) {
	w := mustWorld(b, nil)
	if _, err := w.LoadStock(50000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		w.DB.View(func(tx *ode.Tx) error {
			return ode.Forall(tx, w.Stock).Do(func(it ode.Item) (bool, error) {
				sum += it.Obj.MustGet("qty").Int()
				return true, nil
			})
		})
		if sum == 0 {
			b.Fatal("empty scan")
		}
	}
}

func BenchmarkPointerChase(b *testing.B) {
	w := mustWorld(b, nil)
	head, err := w.LoadChain(50000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		w.DB.View(func(tx *ode.Tx) error {
			for oid := head; oid != ode.NilOID; {
				o, err := tx.Deref(oid)
				if err != nil {
					return err
				}
				sum += o.MustGet("value").Int()
				oid = o.MustGet("next").OID()
			}
			return nil
		})
		if sum == 0 {
			b.Fatal("empty chase")
		}
	}
}

// --- E3 (WE §3.1): suchthat selection, scan vs index, by selectivity ---

func benchSuchthat(b *testing.B, indexed bool) {
	w := mustWorld(b, nil)
	const n = 20000
	if _, err := w.LoadStock(n); err != nil {
		b.Fatal(err)
	}
	if indexed {
		if err := w.DB.CreateIndex(w.Stock, "qty"); err != nil {
			b.Fatal(err)
		}
	}
	for _, selPct := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("select=%d%%", selPct), func(b *testing.B) {
			lo := ode.Int(int64(n - n*selPct/100))
			want := n * selPct / 100
			for i := 0; i < b.N; i++ {
				var got int
				w.DB.View(func(tx *ode.Tx) error {
					q := ode.Forall(tx, w.Stock).SuchThat(ode.Field("qty").Ge(lo))
					if !indexed {
						q = q.NoIndex()
					}
					var err error
					got, err = q.Count()
					return err
				})
				if got != want {
					b.Fatalf("matched %d, want %d", got, want)
				}
			}
		})
	}
}

func BenchmarkSuchthatScan(b *testing.B)    { benchSuchthat(b, false) }
func BenchmarkSuchthatIndexed(b *testing.B) { benchSuchthat(b, true) }

// --- E4 (WE §3.1): the by (ordering) clause ---

func BenchmarkForallBy(b *testing.B) {
	w := mustWorld(b, nil)
	if _, err := w.LoadStock(20000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var last int64 = -1
		w.DB.View(func(tx *ode.Tx) error {
			return ode.Forall(tx, w.Stock).By("qty").Do(func(it ode.Item) (bool, error) {
				q := it.Obj.MustGet("qty").Int()
				if q < last {
					b.Fatal("order violated")
				}
				last = q
				return true, nil
			})
		})
	}
}

// --- E5 (WE §3.1.1): hierarchy iteration person vs person* ---

func BenchmarkHierarchyScan(b *testing.B) {
	w := mustWorld(b, nil)
	if _, err := w.LoadPersons(20000); err != nil {
		b.Fatal(err)
	}
	b.Run("person", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.DB.View(func(tx *ode.Tx) error {
				n, err := ode.Forall(tx, w.Person).Count()
				if n != 10000 {
					b.Fatalf("n=%d", n)
				}
				return err
			})
		}
	})
	b.Run("person*", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.DB.View(func(tx *ode.Tx) error {
				n, err := ode.Forall(tx, w.Person).Subtypes().Count()
				if n != 20000 {
					b.Fatalf("n=%d", n)
				}
				return err
			})
		}
	})
}

// --- E6 (WE §3.1): two-variable joins by physical strategy ---

func benchJoin(b *testing.B, strat ode.JoinStrategy, index bool) {
	w := mustWorld(b, nil)
	if err := w.LoadEmpDept(5000, 50); err != nil {
		b.Fatal(err)
	}
	if index {
		if err := w.DB.CreateIndex(w.Dept, "deptno"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var pairs int
		w.DB.View(func(tx *ode.Tx) error {
			j := ode.Forall(tx, w.Emp).JoinWith(ode.Forall(tx, w.Dept)).
				OnEq("deptno", "deptno").Strategy(strat)
			var err error
			pairs, err = j.Count()
			return err
		})
		if pairs != 5000 {
			b.Fatalf("pairs=%d", pairs)
		}
	}
}

func BenchmarkJoinNestedLoop(b *testing.B) { benchJoin(b, ode.NestedLoop, false) }
func BenchmarkJoinHash(b *testing.B)       { benchJoin(b, ode.HashJoin, false) }
func BenchmarkJoinIndexNL(b *testing.B)    { benchJoin(b, ode.IndexNestedLoop, true) }

// --- E7 (WE §3.2): fixpoint (parts explosion) strategies ---

func benchFixpoint(b *testing.B, f func([]ode.Value, ode.SuccFunc) (*ode.Set, error)) {
	w := mustWorld(b, nil)
	root, total, err := w.LoadPartDAG(6, 40, 6, 7)
	if err != nil {
		b.Fatal(err)
	}
	_ = total
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.DB.View(func(tx *ode.Tx) error {
			set, err := f([]ode.Value{ode.Ref(root)}, bench.Subparts(tx))
			if err != nil {
				return err
			}
			if set.Len() < 10 {
				b.Fatalf("closure too small: %d", set.Len())
			}
			return nil
		})
	}
}

func BenchmarkFixpointWorklist(b *testing.B)  { benchFixpoint(b, ode.TransitiveClosure) }
func BenchmarkFixpointNaive(b *testing.B)     { benchFixpoint(b, ode.NaiveTransitiveClosure) }
func BenchmarkFixpointSemiNaive(b *testing.B) { benchFixpoint(b, ode.SemiNaiveTransitiveClosure) }

// --- E8 (WE §4): versioning ---

func BenchmarkNewVersion(b *testing.B) {
	w := mustWorld(b, nil)
	oids, err := w.LoadStock(1)
	if err != nil {
		b.Fatal(err)
	}
	oid := oids[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.DB.RunTx(func(tx *ode.Tx) error {
			_, err := tx.NewVersion(oid)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchDeref(b *testing.B, chain int, specific bool) {
	w := mustWorld(b, nil)
	oids, err := w.LoadStock(1)
	if err != nil {
		b.Fatal(err)
	}
	oid := oids[0]
	err = w.DB.RunTx(func(tx *ode.Tx) error {
		for i := 0; i < chain; i++ {
			if _, err := tx.NewVersion(oid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	ref := ode.VRef{OID: oid, Version: uint32(chain / 2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.DB.View(func(tx *ode.Tx) error {
			if specific {
				_, err := tx.DerefVersion(ref)
				return err
			}
			_, err := tx.Deref(oid)
			return err
		})
	}
}

func BenchmarkDerefGeneric(b *testing.B) {
	for _, chain := range []int{0, 16, 128} {
		b.Run(fmt.Sprintf("chain=%d", chain), func(b *testing.B) { benchDeref(b, chain, false) })
	}
}

func BenchmarkDerefSpecific(b *testing.B) {
	for _, chain := range []int{16, 128} {
		b.Run(fmt.Sprintf("chain=%d", chain), func(b *testing.B) { benchDeref(b, chain, true) })
	}
}

// --- E9 (WE §5): constraint enforcement cost ---

func benchConstraintWorld(b *testing.B, constraints int) (*ode.DB, *ode.Class, ode.OID) {
	b.Helper()
	s := ode.NewSchema()
	builder := ode.NewClass("acct").Field("bal", ode.TInt)
	for k := 0; k < constraints; k++ {
		builder = builder.Constraint(fmt.Sprintf("c%d", k), "bal >= 0",
			func(_ ode.Store, o *ode.Object) (bool, error) {
				return o.MustGet("bal").Int() >= 0, nil
			})
	}
	acct := builder.Register(s)
	dir, err := os.MkdirTemp("", "ode-cons")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	db, err := ode.Open(filepath.Join(dir, "c.odb"), s, &ode.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := db.CreateCluster(acct); err != nil {
		b.Fatal(err)
	}
	var oid ode.OID
	db.RunTx(func(tx *ode.Tx) error {
		o := ode.NewObject(acct)
		o.MustSet("bal", ode.Int(100))
		var err error
		oid, err = tx.PNew(acct, o)
		return err
	})
	return db, acct, oid
}

func BenchmarkConstraintOverhead(b *testing.B) {
	for _, nc := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("constraints=%d", nc), func(b *testing.B) {
			db, _, oid := benchConstraintWorld(b, nc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.RunTx(func(tx *ode.Tx) error {
					o, err := tx.Deref(oid)
					if err != nil {
						return err
					}
					o.MustSet("bal", ode.Int(int64(i%1000)))
					return tx.Update(oid, o)
				})
			}
		})
	}
}

func BenchmarkConstraintAbort(b *testing.B) {
	db, _, oid := benchConstraintWorld(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.RunTx(func(tx *ode.Tx) error {
			o, err := tx.Deref(oid)
			if err != nil {
				return err
			}
			o.MustSet("bal", ode.Int(-1))
			return tx.Update(oid, o)
		})
		if err == nil {
			b.Fatal("violation not detected")
		}
	}
}

// --- E10 (WE §6): triggers ---

func benchTriggerWorld(b *testing.B, perpetual bool) (*ode.DB, ode.OID) {
	b.Helper()
	s := ode.NewSchema()
	item := ode.NewClass("item").
		Field("qty", ode.TInt).
		Field("fires", ode.TInt).
		Trigger(&ode.TriggerDef{
			Name:      "watch",
			Perpetual: perpetual,
			Cond: func(_ ode.Store, o *ode.Object, _ []ode.Value) (bool, error) {
				return o.MustGet("qty").Int() < 0, nil
			},
			Action: func(st ode.Store, o *ode.Object, oid ode.OID, _ []ode.Value) error {
				o.MustSet("fires", ode.Int(o.MustGet("fires").Int()+1))
				o.MustSet("qty", ode.Int(0))
				return st.Update(oid, o)
			},
		}).
		Register(s)
	dir, err := os.MkdirTemp("", "ode-trig")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	db, err := ode.Open(filepath.Join(dir, "t.odb"), s, &ode.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := db.CreateCluster(item); err != nil {
		b.Fatal(err)
	}
	var oid ode.OID
	db.RunTx(func(tx *ode.Tx) error {
		o := ode.NewObject(item)
		o.MustSet("qty", ode.Int(10))
		var err error
		oid, err = tx.PNew(item, o)
		return err
	})
	return db, oid
}

func BenchmarkTriggerActivate(b *testing.B) {
	db, oid := benchTriggerWorld(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var id ode.OID
		db.RunTx(func(tx *ode.Tx) error {
			var err error
			id, err = db.Triggers().Activate(tx, oid, "watch")
			return err
		})
		db.RunTx(func(tx *ode.Tx) error { return db.Triggers().Deactivate(tx, id) })
	}
}

func benchTriggerFire(b *testing.B, perpetual bool) {
	db, oid := benchTriggerWorld(b, perpetual)
	if perpetual {
		db.RunTx(func(tx *ode.Tx) error {
			_, err := db.Triggers().Activate(tx, oid, "watch")
			return err
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !perpetual {
			db.RunTx(func(tx *ode.Tx) error {
				_, err := db.Triggers().Activate(tx, oid, "watch")
				return err
			})
		}
		// Make the condition true; the commit fires the trigger and the
		// synchronous action resets qty to 0.
		db.RunTx(func(tx *ode.Tx) error {
			o, err := tx.Deref(oid)
			if err != nil {
				return err
			}
			o.MustSet("qty", ode.Int(-1))
			return tx.Update(oid, o)
		})
	}
	b.StopTimer()
	var fires int64
	db.View(func(tx *ode.Tx) error {
		o, _ := tx.Deref(oid)
		fires = o.MustGet("fires").Int()
		return nil
	})
	if fires == 0 {
		b.Fatal("trigger never fired")
	}
}

func BenchmarkTriggerFireOnce(b *testing.B)      { benchTriggerFire(b, false) }
func BenchmarkTriggerFirePerpetual(b *testing.B) { benchTriggerFire(b, true) }

// BenchmarkTriggerQuiescent measures the per-commit cost of having an
// armed trigger whose condition stays false.
func BenchmarkTriggerQuiescent(b *testing.B) {
	db, oid := benchTriggerWorld(b, true)
	db.RunTx(func(tx *ode.Tx) error {
		_, err := db.Triggers().Activate(tx, oid, "watch")
		return err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.RunTx(func(tx *ode.Tx) error {
			o, err := tx.Deref(oid)
			if err != nil {
				return err
			}
			o.MustSet("qty", ode.Int(int64(1+i%100)))
			return tx.Update(oid, o)
		})
	}
}

// --- E11 (PC §2): volatile vs persistent object manipulation ---

func BenchmarkVolatileVsPersistent(b *testing.B) {
	b.Run("volatile", func(b *testing.B) {
		s, w := bench.Schema()
		_ = s
		for i := 0; i < b.N; i++ {
			o := ode.NewObject(w.Stock)
			o.MustSet("qty", ode.Int(int64(i)))
			if o.MustGet("qty").Int() != int64(i) {
				b.Fatal("bad state")
			}
		}
	})
	b.Run("persistent", func(b *testing.B) {
		w := mustWorld(b, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := w.DB.RunTx(func(tx *ode.Tx) error {
				o := ode.NewObject(w.Stock)
				o.MustSet("qty", ode.Int(int64(i)))
				_, err := tx.PNew(w.Stock, o)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E12: recovery (repair-on-open rebuild) ---

func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "ode-recover")
				if err != nil {
					b.Fatal(err)
				}
				// Inline RemoveAll below handles the happy path; the
				// cleanup catches b.Fatal exits mid-iteration.
				b.Cleanup(func() { os.RemoveAll(dir) })
				path := filepath.Join(dir, "r.odb")
				s, w := bench.Schema()
				db, err := ode.Open(path, s, &ode.Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				w.DB = db
				db.CreateCluster(w.Stock)
				if _, err := w.LoadStock(n); err != nil {
					b.Fatal(err)
				}
				// Simulated crash: no checkpoint, WAL left in place.
				db.CrashForTesting()
				b.StartTimer()
				s2, w2 := bench.Schema()
				db2, err := ode.Open(path, s2, &ode.Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				var count int
				db2.View(func(tx *ode.Tx) error {
					count, err = ode.Forall(tx, w2.Stock).Count()
					return err
				})
				if count != n {
					b.Fatalf("recovered %d of %d", count, n)
				}
				db2.Close()
				os.RemoveAll(dir)
			}
		})
	}
}

// --- E13: multi-core read path ---

// BenchmarkConcurrentDeref measures Deref throughput with many
// goroutines sharing one read transaction: the sharded buffer pool and
// decoded-object cache are the contended structures. Scale with -cpu.
func BenchmarkConcurrentDeref(b *testing.B) {
	w := mustWorld(b, nil)
	oids, err := w.LoadStock(20000)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the decoded-object cache so the steady state is measured.
	err = w.DB.View(func(tx *ode.Tx) error {
		for _, oid := range oids {
			if _, err := tx.Deref(oid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	w.DB.View(func(tx *ode.Tx) error {
		var goroutines atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			// Stride each goroutine through a different region.
			i := int(goroutines.Add(1)) * 7919
			for pb.Next() {
				o, err := tx.Deref(oids[i%len(oids)])
				if err != nil {
					b.Error(err)
					return
				}
				if o.MustGet("qty").Int() < 0 {
					b.Error("bad qty")
					return
				}
				i++
			}
		})
		return nil
	})
}

// BenchmarkParallelClusterScan sweeps Query.Parallel worker counts over
// one cluster scan with a concurrency-safe aggregation body.
func BenchmarkParallelClusterScan(b *testing.B) {
	w := mustWorld(b, nil)
	if _, err := w.LoadStock(50000); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var sum atomic.Int64
				err := w.DB.View(func(tx *ode.Tx) error {
					return ode.Forall(tx, w.Stock).Parallel(workers).
						Do(func(it ode.Item) (bool, error) {
							sum.Add(it.Obj.MustGet("qty").Int())
							return true, nil
						})
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Load() == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// --- Ablations ---

// BenchmarkBufferPoolSweep shows scan throughput vs pool size (working
// set ~ 1200 pages for 50k stockitems).
func BenchmarkBufferPoolSweep(b *testing.B) {
	for _, pages := range []int{64, 256, 4096} {
		b.Run(fmt.Sprintf("pool=%d", pages), func(b *testing.B) {
			w := mustWorld(b, &ode.Options{NoSync: true, PoolPages: pages})
			if _, err := w.LoadStock(50000); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.DB.View(func(tx *ode.Tx) error {
					_, err := ode.Forall(tx, w.Stock).Count()
					return err
				})
			}
		})
	}
}

// BenchmarkCommitDurability contrasts fsync-per-commit with NoSync.
func BenchmarkCommitDurability(b *testing.B) {
	for _, nosync := range []bool{false, true} {
		name := "fsync"
		if nosync {
			name = "nosync"
		}
		b.Run(name, func(b *testing.B) {
			w := mustWorld(b, &ode.Options{NoSync: nosync})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := w.DB.RunTx(func(tx *ode.Tx) error {
					o := ode.NewObject(w.Stock)
					o.MustSet("qty", ode.Int(int64(i)))
					_, err := tx.PNew(w.Stock, o)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package ode

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"ode/internal/failpoint"
)

// compactChurn inserts n stock items and deletes every oid where
// keep(i) is false, returning the survivors as oid -> expected qty.
func compactChurn(t *testing.T, db *DB, stock *Class, n int, keep func(i int) bool) map[OID]int64 {
	t.Helper()
	oids := make([]OID, n)
	for i := 0; i < n; i++ {
		oids[i] = addItem(t, db, stock, fmt.Sprintf("item-%04d", i), int64(i), 1.0)
	}
	survivors := make(map[OID]int64)
	for i, oid := range oids {
		if keep(i) {
			survivors[oid] = int64(i)
			continue
		}
		oid := oid
		if err := db.RunTx(func(tx *Tx) error { return tx.PDelete(oid) }); err != nil {
			t.Fatal(err)
		}
	}
	return survivors
}

func checkSurvivors(t *testing.T, db *DB, survivors map[OID]int64) {
	t.Helper()
	if err := db.RunTx(func(tx *Tx) error {
		for oid, qty := range survivors {
			o, err := tx.Deref(oid)
			if err != nil {
				return fmt.Errorf("deref %d: %w", oid, err)
			}
			if got := o.MustGet("qty").Int(); got != qty {
				return fmt.Errorf("oid %d: qty %d, want %d", oid, got, qty)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactReclaimsPages(t *testing.T) {
	db, stock := openTestDB(t, nil)
	// 9 of 10 records deleted leaves most heap pages nearly empty.
	survivors := compactChurn(t, db, stock, 2000, func(i int) bool { return i%10 == 0 })
	// Pin a few frozen versions so the version index is exercised too.
	var versioned []VRef
	for oid := range survivors {
		oid := oid
		var ref VRef
		if err := db.RunTx(func(tx *Tx) error {
			var err error
			ref, err = tx.NewVersion(oid)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		versioned = append(versioned, ref)
		if len(versioned) >= 20 {
			break
		}
	}

	before := db.Stats()
	stats, err := db.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.PagesReclaimed == 0 {
		t.Fatalf("Compact reclaimed no pages after 90%% deletes: %+v", stats)
	}
	if stats.RecordsMoved == 0 {
		t.Fatalf("Compact moved no records: %+v", stats)
	}
	after := db.Stats()
	if after.Storage.PagesReclaimed != uint64(stats.PagesReclaimed) {
		t.Fatalf("storage.pages_reclaimed = %d, want %d", after.Storage.PagesReclaimed, stats.PagesReclaimed)
	}
	if after.Storage.Compactions != 1 {
		t.Fatalf("storage.compactions = %d, want 1", after.Storage.Compactions)
	}
	checkSurvivors(t, db, survivors)
	for _, ref := range versioned {
		if err := db.RunTx(func(tx *Tx) error {
			_, err := tx.DerefVersion(ref)
			return err
		}); err != nil {
			t.Fatalf("version %v after compact: %v", ref, err)
		}
	}

	// The freed pages must be reusable: inserting a fresh batch of the
	// same volume should grow the file far less than the batch would
	// cost from fresh pages.
	pagesAfterCompact := db.Stats().Pages
	for i := 0; i < 1800; i++ {
		addItem(t, db, stock, fmt.Sprintf("refill-%04d", i), int64(i), 2.0)
	}
	growth := int(db.Stats().Pages) - int(pagesAfterCompact)
	if growth > stats.PagesReclaimed/2 {
		t.Fatalf("refill grew file by %d pages despite %d reclaimed (before compact: %d pages)",
			growth, stats.PagesReclaimed, before.Pages)
	}

	// Everything must survive a clean reopen.
	path := db.path
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	schema, _ := inventorySchema()
	db2, err := Open(path, schema, nil)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer db2.Close()
	checkSurvivors(t, db2, survivors)
}

func TestCompactEmptyAndIdempotent(t *testing.T) {
	db, stock := openTestDB(t, nil)
	if _, err := db.Compact(); err != nil {
		t.Fatalf("Compact on near-empty db: %v", err)
	}
	survivors := compactChurn(t, db, stock, 300, func(i int) bool { return i%3 == 0 })
	s1, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesReclaimed > s1.PagesReclaimed {
		t.Fatalf("second pass reclaimed more than first: %+v then %+v", s1, s2)
	}
	checkSurvivors(t, db, survivors)
}

func TestCompactRefusedOnReplica(t *testing.T) {
	db, _ := openTestDB(t, nil)
	db.engine.SetReadOnly(true)
	defer db.engine.SetReadOnly(false)
	if _, err := db.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact on read-only engine = %v, want ErrReadOnly", err)
	}
}

// TestCompactCrash kills the process mid-compaction at each failpoint
// site and verifies recovery: survivors readable with correct state,
// and a follow-up pass still reclaims the space.
func TestCompactCrash(t *testing.T) {
	for _, site := range []string{"storage.compact_move", "storage.compact_free"} {
		site := site
		t.Run(site, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "crash.odb")
			schema, stock := inventorySchema()
			db, err := Open(path, schema, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := db.CreateCluster(stock); err != nil {
				t.Fatal(err)
			}
			survivors := compactChurn(t, db, stock, 1200, func(i int) bool { return i%8 == 0 })

			// Fire on a mid-pass hit so some moves are already on disk.
			if err := failpoint.Arm(site, failpoint.Spec{
				Action: failpoint.ActError, AfterN: 7, OneShot: true,
			}); err != nil {
				t.Fatal(err)
			}
			_, err = db.Compact()
			failpoint.DisarmAll()
			if !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("Compact with armed %s = %v, want injected fault", site, err)
			}
			db.CrashForTesting()

			db2, err := Open(path, schema, nil)
			if err != nil {
				t.Fatalf("reopen after crashed compaction: %v", err)
			}
			defer db2.Close()
			checkSurvivors(t, db2, survivors)
			if _, err := db2.Compact(); err != nil {
				t.Fatalf("compact after recovery: %v", err)
			}
			checkSurvivors(t, db2, survivors)
		})
	}
}

// TestCompactConcurrent races a compaction pass against live write
// traffic; run under -race it checks the locking story, and the final
// scan checks no record was lost or duplicated.
func TestCompactConcurrent(t *testing.T) {
	db, stock := openTestDB(t, nil)
	survivors := compactChurn(t, db, stock, 1500, func(i int) bool { return i%6 == 0 })

	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []OID
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch {
				case len(mine) > 0 && rng.Intn(3) == 0:
					oid := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := db.RunTx(func(tx *Tx) error { return tx.PDelete(oid) }); err != nil {
						errs <- err
						return
					}
				default:
					var oid OID
					err := db.RunTx(func(tx *Tx) error {
						o := NewObject(stock)
						o.MustSet("name", Str(fmt.Sprintf("w%d-%d", w, i)))
						o.MustSet("qty", Int(int64(i)))
						o.MustSet("price", Float(1))
						var err error
						oid, err = tx.PNew(stock, o)
						return err
					})
					if err != nil {
						errs <- err
						return
					}
					mine = append(mine, oid)
				}
			}
		}(w)
	}
	for pass := 0; pass < 3; pass++ {
		if _, err := db.Compact(); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("Compact under traffic: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker: %v", err)
	}
	checkSurvivors(t, db, survivors)
}

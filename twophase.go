package ode

import "ode/internal/txn"

// Two-phase commit surface: a client-side router (client.Sharded)
// coordinates transactions that span shards by preparing them on every
// participant, making the decision durable on the coordinator shard,
// and then delivering it everywhere. These methods expose the engine's
// participant role on an embedded DB; the wire server maps the
// CmdPrepare / CmdCommitPrepared / CmdAbortPrepared / CmdTxStatus
// frames straight onto them. Protocol and failure matrix:
// docs/SHARDING.md.

// PreparedInfo describes one in-doubt prepared transaction.
type PreparedInfo = txn.PreparedInfo

// Transaction status values reported by TxStatus.
const (
	TxStatusUnknown   = txn.StatusUnknown
	TxStatusPrepared  = txn.StatusPrepared
	TxStatusCommitted = txn.StatusCommitted
	TxStatusAborted   = txn.StatusAborted
)

// PrepareTx runs the first phase of two-phase commit on tx under the
// global id gid: constraints and pre-commit hooks run exactly as in
// Commit, the batch is made durable as a prepared (in-doubt) record,
// and the transaction detaches from its session with every lock still
// held. A nil return is this node's yes vote; only CommitPrepared,
// AbortPrepared, or (on the gid's coordinator) the prepare timeout
// finish the transaction afterwards. Note that trigger actions attached
// to the write set do not fire through the two-phase path.
func (db *DB) PrepareTx(tx *Tx, gid string) error {
	return db.engine.Prepare(tx, gid)
}

// CommitPrepared delivers a commit decision for gid: the decision and
// the committed batch become durable together, the ops apply, the
// batch flows to replication, and the locks release. Redelivery is
// idempotent; an unknown (or already aborted) gid fails with
// ErrNoPrepared. Returns the batch's commit LSN (0 for a read-only
// participant).
func (db *DB) CommitPrepared(gid string) (uint64, error) {
	return db.engine.CommitPrepared(gid)
}

// AbortPrepared delivers an abort decision for gid, releasing its
// locks and discarding the prepared batch. Unknown gids succeed —
// under presumed abort, "never prepared here" is the desired state.
func (db *DB) AbortPrepared(gid string) error {
	return db.engine.AbortPrepared(gid)
}

// TxStatus reports gid's fate on this node: prepared (in-doubt),
// committed, aborted, or unknown. A resolver treats the coordinator's
// "unknown" as abort: the decision record is made durable before any
// participant may commit.
func (db *DB) TxStatus(gid string) string { return db.engine.TxStatus(gid) }

// PreparedTxs lists this node's in-doubt transactions, oldest first.
func (db *DB) PreparedTxs() []PreparedInfo { return db.engine.PreparedList() }

// ShardInfo returns the shard coordinates this database was opened
// with (Options.ShardSlot / Options.ShardCount); count < 2 means
// unsharded.
func (db *DB) ShardInfo() (slot, count int) { return db.opts.ShardSlot, db.opts.ShardCount }

package ode

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// inventorySchema builds the paper's stockitem class (section 2) with
// the reorder trigger and a non-negativity constraint.
func inventorySchema() (*Schema, *Class) {
	schema := NewSchema()
	stock := NewClass("stockitem").
		Field("name", TString).
		Field("price", TFloat).
		Field("qty", TInt).
		Field("reorders", TInt).
		Constraint("nonneg-qty", "qty >= 0", func(_ Store, o *Object) (bool, error) {
			return o.MustGet("qty").Int() >= 0, nil
		}).
		Trigger(&TriggerDef{
			Name:   "reorder",
			Params: []Param{{Name: "threshold", Type: TInt}, {Name: "lot", Type: TInt}},
			Src:    "qty < threshold ==> order(lot)",
			Cond: func(_ Store, self *Object, args []Value) (bool, error) {
				return self.MustGet("qty").Int() < args[0].Int(), nil
			},
			Action: func(st Store, self *Object, oid OID, args []Value) error {
				self.MustSet("qty", Int(self.MustGet("qty").Int()+args[1].Int()))
				self.MustSet("reorders", Int(self.MustGet("reorders").Int()+1))
				return st.Update(oid, self)
			},
		}).
		Register(schema)
	return schema, stock
}

func openTestDB(t testing.TB, opts *Options) (*DB, *Class) {
	t.Helper()
	schema, stock := inventorySchema()
	db, err := Open(filepath.Join(t.TempDir(), "inv.odb"), schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.CreateCluster(stock); err != nil {
		t.Fatal(err)
	}
	return db, stock
}

func addItem(t testing.TB, db *DB, stock *Class, name string, qty int64, price float64) OID {
	t.Helper()
	var oid OID
	err := db.RunTx(func(tx *Tx) error {
		o := NewObject(stock)
		o.MustSet("name", Str(name))
		o.MustSet("qty", Int(qty))
		o.MustSet("price", Float(price))
		var err error
		oid, err = tx.PNew(stock, o)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestOpenCreateReopen(t *testing.T) {
	schema, stock := inventorySchema()
	path := filepath.Join(t.TempDir(), "db.odb")
	db, err := Open(path, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateCluster(stock); err != nil {
		t.Fatal(err)
	}
	oid := addItem(t, db, stock, "dram", 7500, 0.05)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	schema2, stock2 := inventorySchema()
	db2, err := Open(path, schema2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	err = db2.View(func(tx *Tx) error {
		o, err := tx.Deref(oid)
		if err != nil {
			return err
		}
		if o.MustGet("name").Str() != "dram" || o.MustGet("qty").Int() != 7500 {
			t.Error("state lost across reopen")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !db2.HasCluster(stock2) {
		t.Error("cluster lost")
	}
}

func TestOpenWrongSchema(t *testing.T) {
	schema, stock := inventorySchema()
	path := filepath.Join(t.TempDir(), "db.odb")
	db, err := Open(path, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.CreateCluster(stock)
	db.Close()

	bad := NewSchema()
	NewClass("stockitem").Field("name", TInt).Register(bad)
	if _, err := Open(path, bad, nil); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("Open with mismatched schema = %v", err)
	}
}

func TestRunTxCommitAndRollback(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := addItem(t, db, stock, "x", 10, 1)
	wantErr := errors.New("boom")
	err := db.RunTx(func(tx *Tx) error {
		o, _ := tx.Deref(oid)
		o.MustSet("qty", Int(0))
		tx.Update(oid, o)
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	db.View(func(tx *Tx) error {
		o, _ := tx.Deref(oid)
		if o.MustGet("qty").Int() != 10 {
			t.Error("rolled-back write visible")
		}
		return nil
	})
}

func TestConstraintEnforcedThroughFacade(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := addItem(t, db, stock, "x", 10, 1)
	err := db.RunTx(func(tx *Tx) error {
		o, _ := tx.Deref(oid)
		o.MustSet("qty", Int(-5))
		return tx.Update(oid, o)
	})
	if !errors.Is(err, ErrConstraintViolation) {
		t.Fatalf("err = %v", err)
	}
}

func TestForallThroughFacade(t *testing.T) {
	db, stock := openTestDB(t, nil)
	for i := 0; i < 20; i++ {
		addItem(t, db, stock, fmt.Sprintf("item%02d", i), int64(i*10), float64(i))
	}
	err := db.View(func(tx *Tx) error {
		n, err := Forall(tx, stock).SuchThat(Field("qty").Ge(Int(100))).Count()
		if err != nil {
			return err
		}
		if n != 10 {
			t.Errorf("matched %d, want 10", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexDDLThroughFacade(t *testing.T) {
	db, stock := openTestDB(t, nil)
	for i := 0; i < 10; i++ {
		addItem(t, db, stock, fmt.Sprintf("i%d", i), int64(i), 1)
	}
	if err := db.CreateIndex(stock, "qty"); err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *Tx) error {
		q := Forall(tx, stock).SuchThat(Field("qty").Eq(Int(5)))
		n, err := q.Count()
		if err != nil || n != 1 {
			t.Errorf("indexed eq: n=%d err=%v", n, err)
		}
		return nil
	})
	if err := db.DropIndex(stock, "qty"); err != nil {
		t.Fatal(err)
	}
}

func TestVersionsThroughFacade(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := addItem(t, db, stock, "versioned", 1, 1)
	var ref VRef
	db.RunTx(func(tx *Tx) error {
		var err error
		ref, err = tx.NewVersion(oid)
		if err != nil {
			return err
		}
		o, _ := tx.Deref(oid)
		o.MustSet("qty", Int(2))
		return tx.Update(oid, o)
	})
	db.View(func(tx *Tx) error {
		old, err := tx.DerefVersion(ref)
		if err != nil {
			return err
		}
		if old.MustGet("qty").Int() != 1 {
			t.Error("old version wrong")
		}
		cur, _ := tx.Deref(oid)
		if cur.MustGet("qty").Int() != 2 {
			t.Error("current wrong")
		}
		return nil
	})
}

func TestStatsAndCheckpoint(t *testing.T) {
	db, stock := openTestDB(t, nil)
	for i := 0; i < 50; i++ {
		addItem(t, db, stock, fmt.Sprintf("s%d", i), 1, 1)
	}
	st := db.Stats()
	if st.WALBytes == 0 {
		t.Error("WAL should have content before checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.WALBytes != 0 {
		t.Error("WAL not truncated by checkpoint")
	}
	if st.Pages < 2 {
		t.Errorf("Pages = %d", st.Pages)
	}
}

func TestVersionBranchingThroughFacade(t *testing.T) {
	db, stock := openTestDB(t, nil)
	oid := addItem(t, db, stock, "chip", 100, 1)

	var base VRef
	err := db.RunTx(func(tx *Tx) error {
		var err error
		base, err = db.Versions().Checkpoint(tx, oid)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mainline work.
	db.RunTx(func(tx *Tx) error {
		o, _ := tx.Deref(oid)
		o.MustSet("qty", Int(200))
		return tx.Update(oid, o)
	})
	// Branch from the base version.
	var mainHead VRef
	err = db.RunTx(func(tx *Tx) error {
		var err error
		mainHead, err = db.Versions().Derive(tx, base)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *Tx) error {
		cur, err := tx.Deref(oid)
		if err != nil {
			return err
		}
		if cur.MustGet("qty").Int() != 100 {
			t.Errorf("branch live state qty = %d, want 100 (base)", cur.MustGet("qty").Int())
		}
		frozen, err := tx.DerefVersion(mainHead)
		if err != nil {
			return err
		}
		if frozen.MustGet("qty").Int() != 200 {
			t.Errorf("mainline head qty = %d, want 200", frozen.MustGet("qty").Int())
		}
		kids, err := db.Versions().Children(tx, base)
		if err != nil {
			return err
		}
		if len(kids) != 2 {
			t.Errorf("children(base) = %v, want 2 (mainline head + live branch)", kids)
		}
		return nil
	})
}

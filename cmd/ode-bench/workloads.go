package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ode"
	"ode/client"
	"ode/internal/bench"
	"ode/internal/server"
	"ode/internal/workload"
)

// runWorkloads is the -workload mode: the macro suite from
// internal/workload, reported as a JSON array of workload.Report rows
// (the format ci/workload_gate.sh diffs against WORKLOAD_BASELINE.json).
//
// Transport selection: by default every mix runs embedded; -connect
// runs the remote-capable mixes against that server instead; -loopback
// runs embedded rows and then remote rows through an in-process server
// (how the committed baseline is recorded — see ci/workload_gate.sh).
func runWorkloads(jsonPath string) int {
	seed := *faultSeed
	if seed == 0 {
		seed = 1
	}
	// The op mix is a pure function of (seed, workers): default to a
	// fixed worker count, not GOMAXPROCS, so the same command line
	// produces the same op counts on every machine (the gate asserts
	// this against the committed baseline).
	wlWorkers := 4
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			wlWorkers = *workers
		}
	})
	cfg := workload.Config{Seed: seed, Workers: wlWorkers, Short: *quick}
	var names []string
	if *workloadNames == "all" {
		names = workload.Names()
	} else {
		for _, n := range strings.Split(*workloadNames, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	var reports []*workload.Report
	runOne := func(wl *workload.Workload, store workload.Store) int {
		rep, err := wl.Run(store, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ode-bench: workload %s (%s): %v\n", wl.Name, store.Mode(), err)
			return 1
		}
		reports = append(reports, rep)
		fmt.Printf("%-10s %-9s seed=%d workers=%d  %9d ops  %8.0f ops/s  p50=%s p99=%s  (%s)\n",
			rep.Workload, rep.Mode, rep.Seed, rep.Workers, rep.Ops, rep.OpsPerSec,
			time.Duration(rep.Latency.P50Ns), time.Duration(rep.Latency.P99Ns),
			time.Duration(rep.NsTotal).Round(time.Millisecond))
		return 0
	}

	embedded := func(wl *workload.Workload) int {
		w, err := bench.NewWorld(wl.DBOptions(cfg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ode-bench: workload %s: open world: %v\n", wl.Name, err)
			return 1
		}
		defer w.Close()
		return runOne(wl, workload.NewEmbeddedStore(w))
	}

	remote := func(wl *workload.Workload, addr string) int {
		schema, cw := bench.Schema()
		c, err := client.Dial(addr, schema, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ode-bench: workload %s: dial %s: %v\n", wl.Name, addr, err)
			return 1
		}
		defer c.Close()
		return runOne(wl, workload.NewRemoteStore(c, cw))
	}

	sharded := func(wl *workload.Workload, addrs []string) int {
		schema, cw := bench.Schema()
		r, err := client.DialSharded(addrs, schema, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ode-bench: workload %s: dial shards %v: %v\n", wl.Name, addrs, err)
			return 1
		}
		defer r.Close()
		return runOne(wl, workload.NewShardedStore(r, cw))
	}

	// A fresh in-process shard group per mix: N worlds opened with shard
	// coordinates (striped OID allocation) behind N servers and one
	// router, exactly like the fresh loopback worlds.
	loopbackSharded := func(wl *workload.Workload, n int) int {
		addrs := make([]string, n)
		for i := 0; i < n; i++ {
			w, err := bench.NewWorld(&ode.Options{ShardCount: n, ShardSlot: i})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ode-bench: workload %s: open shard %d: %v\n", wl.Name, i, err)
				return 1
			}
			defer w.Close()
			srv := server.New(w.DB, nil)
			a, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "ode-bench: workload %s: shard %d listen: %v\n", wl.Name, i, err)
				return 1
			}
			go srv.Serve(nil)
			defer srv.Close()
			addrs[i] = a.String()
		}
		return sharded(wl, addrs)
	}

	// A fresh loopback server per mix keeps runs independent, exactly
	// like the fresh embedded worlds.
	loopbackRemote := func(wl *workload.Workload) int {
		w, err := bench.NewWorld(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ode-bench: workload %s: open loopback world: %v\n", wl.Name, err)
			return 1
		}
		defer w.Close()
		srv := server.New(w.DB, nil)
		a, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ode-bench: workload %s: loopback listen: %v\n", wl.Name, err)
			return 1
		}
		go srv.Serve(nil)
		defer srv.Close()
		return remote(wl, a.String())
	}

	fail := 0
	for _, name := range names {
		wl, ok := workload.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "ode-bench: unknown workload %q (have: %s)\n",
				name, strings.Join(workload.Names(), ", "))
			return 2
		}
		switch {
		case *connectShards != "":
			if !wl.RemoteOK {
				fmt.Printf("%-10s sharded   skipped: needs embedded APIs (%s)\n", wl.Name, wl.Desc)
				continue
			}
			fail |= sharded(wl, strings.Split(*connectShards, ","))
		case *loopbackShards > 1:
			if !wl.RemoteOK {
				fmt.Printf("%-10s sharded   skipped: needs embedded APIs (%s)\n", wl.Name, wl.Desc)
				continue
			}
			fail |= loopbackSharded(wl, *loopbackShards)
		case *connectAddr != "":
			if !wl.RemoteOK {
				fmt.Printf("%-10s remote    skipped: needs embedded APIs (%s)\n", wl.Name, wl.Desc)
				continue
			}
			fail |= remote(wl, *connectAddr)
		default:
			fail |= embedded(wl)
			if *loopback && wl.RemoteOK {
				fail |= loopbackRemote(wl)
			}
		}
	}
	if fail == 0 && jsonPath != "" {
		buf, err := workload.EncodeReports(reports)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ode-bench: encode workload reports:", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ode-bench: write workload reports:", err)
			return 1
		}
		fmt.Printf("\nwrote %d workload rows to %s\n", len(reports), jsonPath)
	}
	return fail
}

// ode-bench runs the reproduction's experiment suite (DESIGN.md §5,
// EXPERIMENTS.md) and prints one table per experiment. The source
// paper is a design paper without measured tables, so each experiment
// regenerates a worked example or quantifies a performance claim; the
// tables here are the rows EXPERIMENTS.md records.
//
// Usage:
//
//	ode-bench [-quick] [-run E3,E7] [-http :8080] [-workers N] [-json FILE]
//	          [-max-tx N] [-deadline D] [-overload N]
//	ode-bench -faults [-seed N] [-rounds N] [-ops N] [-dir DIR] [-cancel]
//
// With -http, the engine metrics of the world currently under
// measurement are published as expvar at /debug/vars (key "ode",
// canonical metric names as in docs/OBSERVABILITY.md). With -json,
// every measured row is also written to FILE as a JSON array.
//
// With -faults, the experiments are skipped and the crash-recovery
// torture suite (internal/torture, docs/TESTING.md) runs instead:
// randomized traffic with deterministic fault injection, a crash and
// recovery per round, and full invariant verification. The run is
// reproducible from the printed seed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"strings"
	"time"

	"ode"
	"ode/client"
	"ode/internal/bench"
	"ode/internal/server"
	"ode/internal/torture"
)

var (
	quick   = flag.Bool("quick", false, "smaller workloads (CI-sized)")
	workers = flag.Int("workers", runtime.GOMAXPROCS(0),
		"max worker count for the multi-core experiment (E13)")

	maxTx = flag.Int("max-tx", 4,
		"admission slots (Options.MaxConcurrentTx) for the governance experiment (E14)")
	deadline = flag.Duration("deadline", 50*time.Millisecond,
		"per-transaction deadline for the governance experiment (E14)")
	overload = flag.Int("overload", 8,
		"offered-load multiplier over -max-tx for the governance experiment (E14)")

	faults      = flag.Bool("faults", false, "run the crash-recovery torture suite instead of the experiments")
	faultSeed   = flag.Int64("seed", 0, "torture PRNG seed (0: derive from the clock and print it)")
	faultRounds = flag.Int("rounds", 0, "torture crash/recover rounds (0: suite default)")
	faultOps    = flag.Int("ops", 0, "torture operations per round (0: suite default)")
	faultDir    = flag.String("dir", "", "torture store directory (default: a temp dir, removed on success)")
	faultCancel = flag.Bool("cancel", false,
		"torture: also drive cancellation/timeout/overload traffic against a governed store (docs/TESTING.md)")

	connectAddr = flag.String("connect", "",
		"E15: measure against this remote ode-server (started with -bench-schema) instead of an in-process loopback server")

	workloadNames = flag.String("workload", "",
		"run the macro workload suite instead of the experiments: comma-separated mix names, or 'all' (docs/TESTING.md); -seed/-workers/-quick apply; with -connect the mixes run against that server, with -loopback both embedded and loopback-remote rows are produced")
	loopback = flag.Bool("loopback", false,
		"workload mode: follow the embedded rows with remote rows through an in-process server (baseline recording)")
	connectShards = flag.String("connect-shards", "",
		"workload mode: comma-separated shard server addresses; the remote-capable mixes run through the sharding router (scatter-gather scans, 2PC commits)")
	loopbackShards = flag.Int("loopback-shards", 0,
		"workload mode: boot N in-process shard servers and run the remote-capable mixes through the router (how BENCH_4.json is recorded)")
)

// benchResult is one measured row of the machine-readable output.
type benchResult struct {
	Experiment string             `json:"experiment"`
	Workload   string             `json:"workload"`
	NsPerOp    int64              `json:"ns_per_op"`
	Workers    int                `json:"workers,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

var (
	results []benchResult
	curExp  string
)

// record captures a measured row for -json in addition to the table.
func record(workload string, d time.Duration, nw int, extra map[string]float64) {
	results = append(results, benchResult{
		Experiment: curExp,
		Workload:   workload,
		NsPerOp:    d.Nanoseconds(),
		Workers:    nw,
		Extra:      extra,
	})
}

// liveDB is the most recently opened benchmark database; the expvar
// bridge snapshots its registry on every scrape.
var liveDB atomic.Pointer[ode.DB]

func main() {
	runFilter := flag.String("run", "", "comma-separated experiment ids (default: all)")
	httpAddr := flag.String("http", "", "serve expvar metrics (/debug/vars) on this address")
	jsonPath := flag.String("json", "", "write measured rows to this file as JSON")
	flag.Parse()
	if *faults {
		os.Exit(runFaults())
	}
	if *workloadNames != "" {
		os.Exit(runWorkloads(*jsonPath))
	}
	if *httpAddr != "" {
		bench.OnOpen = func(db *ode.DB) { liveDB.Store(db) }
		expvar.Publish("ode", expvar.Func(func() any {
			db := liveDB.Load()
			if db == nil {
				return nil
			}
			return db.MetricsRegistry().Snapshot()
		}))
		// The registry snapshot is also served plain (not wrapped in
		// expvar's key/value envelope) for scrapers that want the
		// documented metric names as top-level JSON keys.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			db := liveDB.Load()
			if db == nil {
				w.Write([]byte("{}\n"))
				return
			}
			json.NewEncoder(w).Encode(db.MetricsRegistry().Snapshot())
		})
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ode-bench: metrics server:", err)
			}
		}()
		fmt.Printf("serving metrics on %s/metrics (JSON) and /debug/vars (expvar)\n", *httpAddr)
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*runFilter, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			wanted[id] = true
		}
	}
	type experiment struct {
		id, title string
		run       func() error
	}
	experiments := []experiment{
		{"E1", "persistent object creation and reopen scan (WE §2.2-2.5)", runE1},
		{"E2", "cluster iteration vs pointer navigation (PC §3)", runE2},
		{"E3", "suchthat selection: scan vs index across selectivities (WE §3.1)", runE3},
		{"E4", "the by (ordering) clause (WE §3.1)", runE4},
		{"E5", "hierarchy iteration: person vs person* (WE §3.1.1)", runE5},
		{"E6", "two-variable joins by strategy (WE §3.1)", runE6},
		{"E7", "fixpoint parts explosion: worklist vs naive vs semi-naive (WE §3.2)", runE7},
		{"E8", "versioning: newversion and deref costs (WE §4)", runE8},
		{"E9", "constraint enforcement (WE §5)", runE9},
		{"E10", "trigger activation / firing / quiescence (WE §6)", runE10},
		{"E11", "volatile vs persistent manipulation (PC §2)", runE11},
		{"E12", "crash recovery (repair-on-open)", runE12},
		{"E13", "multi-core read path: parallel forall and concurrent deref", runE13},
		{"E14", "resource governance: admission control, deadlines, bounded WAL", runE14},
		{"E15", "network server: embedded vs remote wire protocol", runE15},
		{"E16", "commit & wire fast paths: group commit, client object cache", runE16},
	}
	for _, e := range experiments {
		if len(wanted) > 0 && !wanted[e.id] {
			continue
		}
		curExp = e.id
		fmt.Printf("\n== %s: %s ==\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ode-bench: encode results:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ode-bench: write results:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d rows to %s\n", len(results), *jsonPath)
	}
}

// runFaults is the -faults mode: one torture run, reproducible from
// the printed seed. On failure the store directory is kept for
// post-mortem inspection; on success a temp directory is removed.
func runFaults() int {
	seed := *faultSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	dir := *faultDir
	keepDir := dir != ""
	if !keepDir {
		var err error
		if dir, err = os.MkdirTemp("", "ode-faults-*"); err != nil {
			fmt.Fprintln(os.Stderr, "ode-bench: ", err)
			return 1
		}
	}
	fmt.Printf("torture: seed=%d dir=%s\n", seed, dir)
	fmt.Printf("reproduce: ode-bench -faults -seed %d", seed)
	if *faultRounds != 0 {
		fmt.Printf(" -rounds %d", *faultRounds)
	}
	if *faultOps != 0 {
		fmt.Printf(" -ops %d", *faultOps)
	}
	if *faultCancel {
		fmt.Printf(" -cancel")
	}
	fmt.Println()
	res, err := torture.Run(torture.Config{
		Seed:        seed,
		Rounds:      *faultRounds,
		OpsPerRound: *faultOps,
		Cancel:      *faultCancel,
		Dir:         dir,
		Log:         os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ode-bench: torture failed (store kept at %s): %v\n", dir, err)
		return 1
	}
	fmt.Printf("\ntorture passed: rounds=%d ops=%d commits=%d aborts=%d kills=%d overloads=%d faults=%d recoveries=%d resurrected=%d\n",
		res.Rounds, res.Ops, res.Commits, res.Aborts, res.Kills, res.Overloads, res.Faults, res.Recoveries, res.Resurrected)
	if len(res.SitesFired) > 0 {
		sites := make([]string, 0, len(res.SitesFired))
		for s := range res.SitesFired {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		fmt.Println("faults injected by site:")
		for _, s := range sites {
			fmt.Printf("  %-24s %d\n", s, res.SitesFired[s])
		}
	}
	if !keepDir {
		os.RemoveAll(dir)
	}
	return 0
}

func scale(n int) int {
	if *quick {
		return n / 10
	}
	return n
}

// timeIt runs fn `reps` times and returns the per-rep duration.
func timeIt(reps int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}

func row(cols ...any) {
	parts := make([]string, len(cols))
	var labels []string
	for i, c := range cols {
		switch v := c.(type) {
		case time.Duration:
			parts[i] = fmt.Sprintf("%12s", v.Round(time.Microsecond))
			record(strings.Join(labels, " "), v, 0, nil)
		case string:
			parts[i] = fmt.Sprintf("%-28s", v)
			labels = append(labels, v)
		default:
			parts[i] = fmt.Sprintf("%10v", v)
			labels = append(labels, fmt.Sprint(v))
		}
	}
	fmt.Println("  " + strings.Join(parts, " "))
}

func runE1() error {
	for _, n := range []int{scale(1000), scale(10000), scale(100000)} {
		w, err := bench.NewWorld(nil)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := w.LoadStock(n); err != nil {
			w.Close()
			return err
		}
		create := time.Since(start)
		if err := w.DB.Checkpoint(); err != nil {
			w.Close()
			return err
		}
		scan, err := timeIt(3, func() error {
			return w.DB.View(func(tx *ode.Tx) error {
				got, err := ode.Forall(tx, w.Stock).Count()
				if got != n {
					return fmt.Errorf("scan found %d of %d", got, n)
				}
				return err
			})
		})
		if err != nil {
			w.Close()
			return err
		}
		st := w.DB.Stats()
		row(fmt.Sprintf("objects=%d", n), "create", create, "scan", scan,
			fmt.Sprintf("%6d pages", st.Pages))
		w.Close()
	}
	return nil
}

func runE2() error {
	n := scale(50000)
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := w.LoadStock(n); err != nil {
		return err
	}
	head, err := w.LoadChain(n)
	if err != nil {
		return err
	}
	scan, err := timeIt(3, func() error {
		return w.DB.View(func(tx *ode.Tx) error {
			_, err := ode.Forall(tx, w.Stock).Count()
			return err
		})
	})
	if err != nil {
		return err
	}
	chase, err := timeIt(3, func() error {
		return w.DB.View(func(tx *ode.Tx) error {
			for oid := head; oid != ode.NilOID; {
				o, err := tx.Deref(oid)
				if err != nil {
					return err
				}
				oid = o.MustGet("next").OID()
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	row(fmt.Sprintf("N=%d forall-iterator", n), scan)
	row(fmt.Sprintf("N=%d pointer-navigation", n), chase)
	fmt.Printf("  (declarative iterators also admit indexes — see E3 — and predicates;\n   pointer navigation admits neither)\n")
	return nil
}

func runE3() error {
	n := scale(50000)
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := w.LoadStock(n); err != nil {
		return err
	}
	measure := func(selPct int, indexed bool) (time.Duration, error) {
		lo := ode.Int(int64(n - n*selPct/100))
		return timeIt(3, func() error {
			return w.DB.View(func(tx *ode.Tx) error {
				q := ode.Forall(tx, w.Stock).SuchThat(ode.Field("qty").Ge(lo))
				if !indexed {
					q = q.NoIndex()
				}
				got, err := q.Count()
				if err != nil {
					return err
				}
				if want := n * selPct / 100; got != want {
					return fmt.Errorf("matched %d, want %d", got, want)
				}
				return nil
			})
		})
	}
	for _, selPct := range []int{1, 10, 100} {
		scan, err := measure(selPct, false)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("select=%3d%% extent-scan", selPct), scan)
	}
	if err := w.DB.CreateIndex(w.Stock, "qty"); err != nil {
		return err
	}
	for _, selPct := range []int{1, 10, 100} {
		idx, err := measure(selPct, true)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("select=%3d%% index-scan", selPct), idx)
	}
	return nil
}

func runE4() error {
	n := scale(50000)
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := w.LoadStock(n); err != nil {
		return err
	}
	unordered, err := timeIt(3, func() error {
		return w.DB.View(func(tx *ode.Tx) error {
			_, err := ode.Forall(tx, w.Stock).Count()
			return err
		})
	})
	if err != nil {
		return err
	}
	ordered, err := timeIt(3, func() error {
		return w.DB.View(func(tx *ode.Tx) error {
			return ode.Forall(tx, w.Stock).By("name").Do(func(ode.Item) (bool, error) {
				return true, nil
			})
		})
	})
	if err != nil {
		return err
	}
	row(fmt.Sprintf("N=%d unordered", n), unordered)
	row(fmt.Sprintf("N=%d by (name)", n), ordered)
	return nil
}

func runE5() error {
	n := scale(40000)
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := w.LoadPersons(n); err != nil {
		return err
	}
	exact, err := timeIt(3, func() error {
		return w.DB.View(func(tx *ode.Tx) error {
			_, err := ode.Forall(tx, w.Person).Count()
			return err
		})
	})
	if err != nil {
		return err
	}
	star, err := timeIt(3, func() error {
		return w.DB.View(func(tx *ode.Tx) error {
			_, err := ode.Forall(tx, w.Person).Subtypes().Count()
			return err
		})
	})
	if err != nil {
		return err
	}
	row(fmt.Sprintf("person  (%d objects)", n/2), exact)
	row(fmt.Sprintf("person* (%d objects)", n), star)
	return nil
}

func runE6() error {
	nEmp, nDept := scale(20000), 100
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := w.LoadEmpDept(nEmp, nDept); err != nil {
		return err
	}
	if err := w.DB.CreateIndex(w.Dept, "deptno"); err != nil {
		return err
	}
	for _, s := range []ode.JoinStrategy{ode.NestedLoop, ode.HashJoin, ode.IndexNestedLoop} {
		reps := 3
		if s == ode.NestedLoop {
			reps = 1
		}
		d, err := timeIt(reps, func() error {
			return w.DB.View(func(tx *ode.Tx) error {
				j := ode.Forall(tx, w.Emp).JoinWith(ode.Forall(tx, w.Dept)).
					OnEq("deptno", "deptno").Strategy(s)
				pairs, err := j.Count()
				if err != nil {
					return err
				}
				if pairs != nEmp {
					return fmt.Errorf("pairs=%d", pairs)
				}
				return nil
			})
		})
		if err != nil {
			return err
		}
		row(fmt.Sprintf("emp(%d) ⋈ dept(%d) %s", nEmp, nDept, s), d)
	}
	return nil
}

func runE7() error {
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	for _, depth := range []int{3, 6, 9} {
		root, total, err := w.LoadPartDAG(depth, 30, 5, int64(depth))
		if err != nil {
			return err
		}
		type strat struct {
			name string
			fn   func([]ode.Value, ode.SuccFunc) (*ode.Set, error)
		}
		for _, s := range []strat{
			{"worklist (O++ loop)", ode.TransitiveClosure},
			{"naive", ode.NaiveTransitiveClosure},
			{"semi-naive", ode.SemiNaiveTransitiveClosure},
		} {
			var size int
			d, err := timeIt(3, func() error {
				return w.DB.View(func(tx *ode.Tx) error {
					set, err := s.fn([]ode.Value{ode.Ref(root)}, bench.Subparts(tx))
					if err != nil {
						return err
					}
					size = set.Len()
					return nil
				})
			})
			if err != nil {
				return err
			}
			row(fmt.Sprintf("depth=%d parts=%d closure=%d %s", depth, total, size, s.name), d)
		}
	}
	return nil
}

func runE8() error {
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	oids, err := w.LoadStock(1)
	if err != nil {
		return err
	}
	oid := oids[0]
	nv, err := timeIt(200, func() error {
		return w.DB.RunTx(func(tx *ode.Tx) error {
			_, err := tx.NewVersion(oid)
			return err
		})
	})
	if err != nil {
		return err
	}
	row("newversion", nv)
	for _, chain := range []int{16, 128} {
		// Top the chain up to the target length.
		cur := 0
		w.DB.View(func(tx *ode.Tx) error {
			v, _ := tx.CurrentVersion(oid)
			cur = int(v)
			return nil
		})
		if cur < chain {
			w.DB.RunTx(func(tx *ode.Tx) error {
				for i := cur; i < chain; i++ {
					if _, err := tx.NewVersion(oid); err != nil {
						return err
					}
				}
				return nil
			})
		}
		g, err := timeIt(500, func() error {
			return w.DB.View(func(tx *ode.Tx) error {
				_, err := tx.Deref(oid)
				return err
			})
		})
		if err != nil {
			return err
		}
		ref := ode.VRef{OID: oid, Version: uint32(chain / 2)}
		sp, err := timeIt(500, func() error {
			return w.DB.View(func(tx *ode.Tx) error {
				_, err := tx.DerefVersion(ref)
				return err
			})
		})
		if err != nil {
			return err
		}
		row(fmt.Sprintf("chain=%3d generic deref", chain), g)
		row(fmt.Sprintf("chain=%3d pinned deref", chain), sp)
	}
	return nil
}

func runE9() error {
	for _, nc := range []int{0, 1, 4} {
		s := ode.NewSchema()
		builder := ode.NewClass("acct").Field("bal", ode.TInt)
		for k := 0; k < nc; k++ {
			builder = builder.Constraint(fmt.Sprintf("c%d", k), "bal >= 0",
				func(_ ode.Store, o *ode.Object) (bool, error) {
					return o.MustGet("bal").Int() >= 0, nil
				})
		}
		acct := builder.Register(s)
		dir, err := os.MkdirTemp("", "ode-e9")
		if err != nil {
			return err
		}
		db, err := ode.Open(filepath.Join(dir, "c.odb"), s, &ode.Options{NoSync: true})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		db.CreateCluster(acct)
		var oid ode.OID
		db.RunTx(func(tx *ode.Tx) error {
			o := ode.NewObject(acct)
			o.MustSet("bal", ode.Int(1))
			var err error
			oid, err = tx.PNew(acct, o)
			return err
		})
		d, err := timeIt(500, func() error {
			return db.RunTx(func(tx *ode.Tx) error {
				o, err := tx.Deref(oid)
				if err != nil {
					return err
				}
				o.MustSet("bal", ode.Int(2))
				return tx.Update(oid, o)
			})
		})
		db.Close()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("update with %d constraints", nc), d)
	}
	return nil
}

func runE10() error {
	s := ode.NewSchema()
	item := ode.NewClass("item").
		Field("qty", ode.TInt).
		Field("fires", ode.TInt).
		Trigger(&ode.TriggerDef{
			Name:      "watch",
			Perpetual: true,
			Cond: func(_ ode.Store, o *ode.Object, _ []ode.Value) (bool, error) {
				return o.MustGet("qty").Int() < 0, nil
			},
			Action: func(st ode.Store, o *ode.Object, oid ode.OID, _ []ode.Value) error {
				o.MustSet("fires", ode.Int(o.MustGet("fires").Int()+1))
				o.MustSet("qty", ode.Int(0))
				return st.Update(oid, o)
			},
		}).
		Register(s)
	dir, err := os.MkdirTemp("", "ode-e10")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := ode.Open(filepath.Join(dir, "t.odb"), s, &ode.Options{NoSync: true})
	if err != nil {
		return err
	}
	defer db.Close()
	db.CreateCluster(item)
	var oid ode.OID
	db.RunTx(func(tx *ode.Tx) error {
		o := ode.NewObject(item)
		o.MustSet("qty", ode.Int(1))
		var err error
		oid, err = tx.PNew(item, o)
		return err
	})
	bare, err := timeIt(500, func() error {
		return db.RunTx(func(tx *ode.Tx) error {
			o, err := tx.Deref(oid)
			if err != nil {
				return err
			}
			o.MustSet("qty", ode.Int(5))
			return tx.Update(oid, o)
		})
	})
	if err != nil {
		return err
	}
	row("update, no activations", bare)
	db.RunTx(func(tx *ode.Tx) error {
		_, err := db.Triggers().Activate(tx, oid, "watch")
		return err
	})
	quiet, err := timeIt(500, func() error {
		return db.RunTx(func(tx *ode.Tx) error {
			o, err := tx.Deref(oid)
			if err != nil {
				return err
			}
			o.MustSet("qty", ode.Int(5))
			return tx.Update(oid, o)
		})
	})
	if err != nil {
		return err
	}
	row("update, armed but quiescent", quiet)
	fire, err := timeIt(500, func() error {
		return db.RunTx(func(tx *ode.Tx) error {
			o, err := tx.Deref(oid)
			if err != nil {
				return err
			}
			o.MustSet("qty", ode.Int(-1))
			return tx.Update(oid, o)
		})
	})
	if err != nil {
		return err
	}
	row("update that fires (incl. action tx)", fire)
	return nil
}

func runE11() error {
	_, w := bench.Schema()
	vol, err := timeIt(200000, func() error {
		o := ode.NewObject(w.Stock)
		o.MustSet("qty", ode.Int(1))
		return nil
	})
	if err != nil {
		return err
	}
	ww, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer ww.Close()
	pers, err := timeIt(2000, func() error {
		return ww.DB.RunTx(func(tx *ode.Tx) error {
			o := ode.NewObject(ww.Stock)
			o.MustSet("qty", ode.Int(1))
			_, err := tx.PNew(ww.Stock, o)
			return err
		})
	})
	if err != nil {
		return err
	}
	row("volatile new + set", vol)
	row("pnew + commit (nosync)", pers)
	return nil
}

func runE12() error {
	for _, n := range []int{scale(5000), scale(20000)} {
		dir, err := os.MkdirTemp("", "ode-e12")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "r.odb")
		s, w := bench.Schema()
		db, err := ode.Open(path, s, &ode.Options{NoSync: true})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		w.DB = db
		db.CreateCluster(w.Stock)
		if _, err := w.LoadStock(n); err != nil {
			os.RemoveAll(dir)
			return err
		}
		db.CrashForTesting()
		start := time.Now()
		s2, w2 := bench.Schema()
		db2, err := ode.Open(path, s2, &ode.Options{NoSync: true})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		recov := time.Since(start)
		var count int
		db2.View(func(tx *ode.Tx) error {
			count, err = ode.Forall(tx, w2.Stock).Count()
			return err
		})
		db2.Close()
		os.RemoveAll(dir)
		if count != n {
			return fmt.Errorf("recovered %d of %d", count, n)
		}
		row(fmt.Sprintf("crash with %d objects in WAL", n), "recover+verify", recov)
	}
	return nil
}

// rowE13 prints like row but records the worker count and extras with
// the measurement, so the -json output carries the scaling data.
func rowE13(label string, d time.Duration, nw int, extra map[string]float64) {
	fmt.Printf("  %-28s %12s\n", label, d.Round(time.Microsecond))
	record(label, d, nw, extra)
}

func runE13() error {
	n := scale(50000)
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	oids, err := w.LoadStock(n)
	if err != nil {
		return err
	}

	counts := []int{1}
	for nw := 2; nw < *workers; nw *= 2 {
		counts = append(counts, nw)
	}
	if *workers > 1 {
		counts = append(counts, *workers)
	}

	// Parallel forall: one cluster scan partitioned across workers.
	scan := func(nw int) (time.Duration, error) {
		return timeIt(3, func() error {
			var sum atomic.Int64
			err := w.DB.View(func(tx *ode.Tx) error {
				return ode.Forall(tx, w.Stock).Parallel(nw).
					Do(func(it ode.Item) (bool, error) {
						sum.Add(it.Obj.MustGet("qty").Int())
						return true, nil
					})
			})
			if err != nil {
				return err
			}
			if sum.Load() == 0 {
				return fmt.Errorf("empty scan")
			}
			return nil
		})
	}
	// Untimed warm-up so workers=1 is not charged the cold pool.
	if _, err := scan(1); err != nil {
		return err
	}
	var scanBase time.Duration
	for _, nw := range counts {
		d, err := scan(nw)
		if err != nil {
			return err
		}
		extra := map[string]float64{}
		if nw == 1 {
			scanBase = d
		} else if d > 0 {
			extra["speedup"] = float64(scanBase) / float64(d)
		}
		rowE13(fmt.Sprintf("cluster-scan workers=%d", nw), d, nw, extra)
	}
	if last, err := scan(counts[len(counts)-1]); err == nil && last > 0 {
		fmt.Printf("  (scan speedup at %d workers: %.2fx)\n",
			counts[len(counts)-1], float64(scanBase)/float64(last))
	}

	// Concurrent deref: independent goroutines sharing one read
	// transaction, hitting the sharded pool and decoded-object cache.
	// The hot set fits the default decoded-object cache so the steady
	// state is cache-resident. Reported per-deref across all
	// goroutines (aggregate throughput).
	hot := oids
	if len(hot) > 4000 {
		hot = hot[:4000]
	}
	deref := func(nw int) (time.Duration, error) {
		perG := scale(200000) / nw
		start := time.Now()
		err := w.DB.View(func(tx *ode.Tx) error {
			var wg sync.WaitGroup
			errCh := make(chan error, nw)
			for g := 0; g < nw; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					i := g * 7919
					for k := 0; k < perG; k++ {
						if _, err := tx.Deref(hot[i%len(hot)]); err != nil {
							errCh <- err
							return
						}
						i++
					}
				}(g)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				return err
			default:
				return nil
			}
		})
		if err != nil {
			return 0, err
		}
		return time.Since(start) / time.Duration(nw*perG), nil
	}
	st0 := w.DB.Stats()
	var derefBase time.Duration
	for _, nw := range counts {
		d, err := deref(nw)
		if err != nil {
			return err
		}
		extra := map[string]float64{}
		if nw == 1 {
			derefBase = d
		} else if d > 0 {
			extra["speedup"] = float64(derefBase) / float64(d)
		}
		rowE13(fmt.Sprintf("deref workers=%d", nw), d, nw, extra)
	}
	st := w.DB.Stats()
	if looks := st.Object.CacheHits - st0.Object.CacheHits; looks > 0 {
		hitPct := 100 * float64(looks) /
			float64(looks+st.Object.CacheMisses-st0.Object.CacheMisses)
		fmt.Printf("  (decoded-object cache hit rate during deref: %.1f%%; pool shards: %d)\n",
			hitPct, st.Pool.Shards)
	}
	return nil
}

func rowE14(label string, d time.Duration, extra map[string]float64) {
	fmt.Printf("  %-34s %12s", label, d.Round(time.Microsecond))
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s=%.0f", k, extra[k])
	}
	fmt.Println()
	record(label, d, 0, extra)
}

func runE14() error {
	slots := *maxTx
	if slots <= 0 {
		slots = 1
	}
	offered := slots * *overload
	if offered <= slots {
		offered = slots + 1
	}
	perG := scale(200)
	if perG < 20 {
		perG = 20
	}

	// burst drives `offered` writer goroutines, each attempting perG
	// single-object updates under the per-transaction -deadline, and
	// classifies every outcome by the typed error taxonomy. The mean
	// latency column is commits only. Each transaction holds its
	// admission slot for `hold` (a slow client) — without that, µs-scale
	// commits recycle the slots so fast the gate never engages.
	const hold = 500 * time.Microsecond
	burst := func(label string, opts *ode.Options) error {
		w, err := bench.NewWorld(opts)
		if err != nil {
			return err
		}
		defer w.Close()
		oids, err := w.LoadStock(64)
		if err != nil {
			return err
		}
		var commits, rejects, timeouts, commitNs atomic.Int64
		var failure atomic.Pointer[error]
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < offered; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < perG; k++ {
					oid := oids[(g*7919+k)%len(oids)]
					ctx, cancel := context.WithTimeout(context.Background(), *deadline)
					t0 := time.Now()
					err := w.DB.RunTxCtx(ctx, func(tx *ode.Tx) error {
						o, err := tx.Deref(oid)
						if err != nil {
							return err
						}
						time.Sleep(hold)
						o.MustSet("qty", ode.Int(o.MustGet("qty").Int()+1))
						return tx.Update(oid, o)
					})
					cancel()
					switch {
					case err == nil:
						commits.Add(1)
						commitNs.Add(time.Since(t0).Nanoseconds())
					case errors.Is(err, ode.ErrOverloaded):
						rejects.Add(1)
					case errors.Is(err, ode.ErrTxTimeout), errors.Is(err, ode.ErrCanceled):
						timeouts.Add(1)
					default:
						failure.CompareAndSwap(nil, &err)
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if p := failure.Load(); p != nil {
			return *p
		}
		var mean time.Duration
		if n := commits.Load(); n > 0 {
			mean = time.Duration(commitNs.Load() / n)
		}
		st := w.DB.Stats()
		rowE14(label, mean, map[string]float64{
			"commits":  float64(commits.Load()),
			"rejects":  float64(rejects.Load()),
			"timeouts": float64(timeouts.Load()),
			"waits":    float64(st.Txn.AdmissionWaits),
			"tps":      float64(commits.Load()) / elapsed.Seconds(),
		})
		return nil
	}

	fmt.Printf("  offered load: %d writers x %d tx, slots=%d, deadline=%v\n",
		offered, perG, slots, *deadline)
	if err := burst("ungoverned", &ode.Options{NoSync: true}); err != nil {
		return err
	}
	if err := burst(fmt.Sprintf("governed slots=%d queue=none", slots),
		&ode.Options{NoSync: true, MaxConcurrentTx: slots, MaxQueuedTx: -1}); err != nil {
		return err
	}
	if err := burst(fmt.Sprintf("governed slots=%d queue=%d", slots, 2*slots),
		&ode.Options{NoSync: true, MaxConcurrentTx: slots}); err != nil {
		return err
	}

	// Bounded WAL growth: an append-heavy writer under a 64 KiB soft /
	// 256 KiB hard limit. The soft limit kicks the background
	// checkpointer; the hard limit stalls commits when the writer
	// outruns it. The observed peak must stay near the hard bound.
	const soft, hard = 64 << 10, 256 << 10
	w, err := bench.NewWorld(&ode.Options{
		NoSync: true, WALSoftLimit: soft, WALHardLimit: hard,
	})
	if err != nil {
		return err
	}
	defer w.Close()
	payload := strings.Repeat("x", 1024)
	var peak int64
	n := scale(2000)
	if n < 200 {
		n = 200
	}
	d, err := timeIt(n, func() error {
		err := w.DB.RunTx(func(tx *ode.Tx) error {
			o := ode.NewObject(w.Stock)
			o.MustSet("name", ode.Str(payload))
			o.MustSet("price", ode.Float(1))
			o.MustSet("qty", ode.Int(1))
			o.MustSet("threshold", ode.Int(0))
			_, err := tx.PNew(w.Stock, o)
			return err
		})
		if wb := w.DB.Stats().WALBytes; wb > peak {
			peak = wb
		}
		return err
	})
	if err != nil {
		return err
	}
	// Give the background checkpointer a moment to drain the tail so
	// the auto_ckpt column reflects the kicks the soft limit issued.
	for wait := time.Now(); w.DB.Stats().WALBytes >= soft &&
		time.Since(wait) < time.Second; {
		time.Sleep(time.Millisecond)
	}
	st := w.DB.Stats()
	rowE14(fmt.Sprintf("bounded WAL soft=%dKiB hard=%dKiB", soft>>10, hard>>10), d,
		map[string]float64{
			"commits":     float64(n),
			"peak_wal_kb": float64(peak >> 10),
			"auto_ckpt":   float64(st.WAL.AutoCheckpoints),
			"stalls":      float64(st.WAL.BackpressureStalls),
		})
	if peak > hard+(64<<10) {
		return fmt.Errorf("WAL peaked at %d bytes, far beyond the %d hard limit", peak, hard)
	}
	return nil
}

// runE15 measures the cost of the network hop: the same operations
// embedded (function call into the engine) and remote (wire protocol
// round trip to a server), plus the pipelined variant that amortizes
// round trips. By default the server runs in-process on loopback; with
// -connect it is an external ode-server daemon started with
// -bench-schema (whose class registration matches bench.Schema).
func runE15() error {
	nItems := scale(5000)
	const txBatch = 20
	reps := scale(400)
	if reps < txBatch {
		reps = txBatch
	}

	// Embedded baseline.
	w, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	oids, err := w.LoadStock(nItems)
	if err != nil {
		return err
	}
	newStock := func(c *ode.Class, i int) *ode.Object {
		o := ode.NewObject(c)
		o.MustSet("name", ode.Str(fmt.Sprintf("e15-%07d", i)))
		o.MustSet("price", ode.Float(1))
		o.MustSet("qty", ode.Int(int64(i)))
		o.MustSet("threshold", ode.Int(100))
		return o
	}
	embPNew, err := timeIt(reps/txBatch, func() error {
		return w.DB.RunTx(func(tx *ode.Tx) error {
			for i := 0; i < txBatch; i++ {
				if _, err := tx.PNew(w.Stock, newStock(w.Stock, i)); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	var k int
	embDeref, err := timeIt(3, func() error {
		return w.DB.View(func(tx *ode.Tx) error {
			for i := 0; i < reps; i++ {
				k = (k + 7919) % len(oids)
				if _, err := tx.Deref(oids[k]); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	embDeref /= time.Duration(reps)
	embScan, err := timeIt(3, func() error {
		return w.DB.View(func(tx *ode.Tx) error {
			_, err := ode.Forall(tx, w.Stock).
				SuchThat(ode.Field("qty").Ge(ode.Int(int64(nItems / 2)))).Count()
			return err
		})
	})
	if err != nil {
		return err
	}

	// Remote side: external daemon (-connect) or in-process loopback.
	addr := *connectAddr
	var srv *server.Server
	if addr == "" {
		rw, err := bench.NewWorld(nil)
		if err != nil {
			return err
		}
		defer rw.Close()
		srv = server.New(rw.DB, nil)
		a, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(nil)
		defer srv.Close()
		addr = a.String()
	}
	schema, cw := bench.Schema()
	c, err := client.Dial(addr, schema, nil)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()
	ctx := context.Background()

	var roids []ode.OID
	if err := c.RunTx(ctx, func(tx *client.Tx) error {
		p := tx.Pipeline()
		futs := make([]*client.Future, nItems)
		for i := range futs {
			futs[i] = p.PNew(cw.Stock, newStock(cw.Stock, i))
		}
		if err := p.Flush(); err != nil {
			return err
		}
		roids = roids[:0]
		for _, f := range futs {
			oid, err := f.OID()
			if err != nil {
				return err
			}
			roids = append(roids, oid)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("remote load: %w", err)
	}

	remPNew, err := timeIt(reps/txBatch, func() error {
		return c.RunTx(ctx, func(tx *client.Tx) error {
			for i := 0; i < txBatch; i++ {
				if _, err := tx.PNew(cw.Stock, newStock(cw.Stock, i)); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	remPNewPipe, err := timeIt(reps/txBatch, func() error {
		return c.RunTx(ctx, func(tx *client.Tx) error {
			p := tx.Pipeline()
			futs := make([]*client.Future, txBatch)
			for i := range futs {
				futs[i] = p.PNew(cw.Stock, newStock(cw.Stock, i))
			}
			if err := p.Flush(); err != nil {
				return err
			}
			for _, f := range futs {
				if _, err := f.OID(); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	remDeref, err := timeIt(3, func() error {
		return c.RunTx(ctx, func(tx *client.Tx) error {
			for i := 0; i < reps; i++ {
				k = (k + 7919) % len(roids)
				if _, err := tx.Deref(roids[k]); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	remDeref /= time.Duration(reps)
	remScan, err := timeIt(3, func() error {
		return c.RunTx(ctx, func(tx *client.Tx) error {
			_, err := tx.Count(&client.Scan{
				Class: cw.Stock, Field: "qty", Op: client.CmpGe, Value: ode.Int(int64(nItems / 2)),
			})
			return err
		})
	})
	if err != nil {
		return err
	}

	perOp := func(d time.Duration) time.Duration { return d / txBatch }
	row(fmt.Sprintf("pnew/op (tx of %d)", txBatch), "embedded", perOp(embPNew),
		"remote", perOp(remPNew), "remote pipelined", perOp(remPNewPipe))
	row("deref/op", "embedded", embDeref, "remote", remDeref)
	row(fmt.Sprintf("suchthat scan (n=%d)", nItems), "embedded", embScan, "remote", remScan)
	return nil
}

// rowE16 prints one fast-path row and records it under a stable
// workload name (ci/bench_gate.sh greps these names out of the -json
// output, so they must not drift).
func rowE16(label string, d time.Duration, nw int, extra map[string]float64) {
	fmt.Printf("  %-34s %12s  workers=%d", label, d.Round(time.Microsecond), nw)
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s=%.2f", k, extra[k])
	}
	fmt.Println()
	record(label, d, nw, extra)
}

// runE16 quantifies the commit and wire fast paths. Part one is group
// commit: transactions of 20 pnews against a sync-on-commit store,
// with N concurrent committers, comparing serialized fsyncs
// (GroupCommit.Disable) against the shared-fsync default — the win
// comes from committers overlapping in one fsync, so it appears only
// under concurrency. Part two is the client object cache on the
// remote deref path: a cache-disabled client (every deref a full
// round trip carrying the image) against a warmed cache (first touch
// per transaction revalidates by tag, repeats are local). The third
// fast path, the low-allocation frame codec, is pinned by
// BenchmarkFrameRoundTrip in internal/wire rather than here.
func runE16() error {
	const txBatch = 20
	txsPerWorker := scale(60)
	if txsPerWorker < 8 {
		txsPerWorker = 8
	}

	// One committer run: nw goroutines, txsPerWorker transactions of
	// txBatch pnews each, fsync on commit. Returns per-transaction
	// time and the grouped-fsync counters.
	commitRun := func(nw int, disable bool) (time.Duration, uint64, uint64, error) {
		w, err := bench.NewWorld(&ode.Options{ // zero NoSync: fsync on every commit
			GroupCommit: ode.GroupCommitOptions{Disable: disable},
		})
		if err != nil {
			return 0, 0, 0, err
		}
		defer w.Close()
		errc := make(chan error, nw)
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < nw; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := 0; t < txsPerWorker; t++ {
					err := w.DB.RunTx(func(tx *ode.Tx) error {
						for i := 0; i < txBatch; i++ {
							o := ode.NewObject(w.Stock)
							o.MustSet("name", ode.Str(fmt.Sprintf("e16-%d-%d-%d", g, t, i)))
							o.MustSet("price", ode.Float(1))
							o.MustSet("qty", ode.Int(int64(i)))
							o.MustSet("threshold", ode.Int(0))
							if _, err := tx.PNew(w.Stock, o); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		perTx := time.Since(start) / time.Duration(nw*txsPerWorker)
		close(errc)
		if err := <-errc; err != nil {
			return 0, 0, 0, err
		}
		st := w.DB.Stats()
		return perTx, st.WAL.GroupCommits, st.WAL.GroupCommitSize, nil
	}

	for _, nw := range []int{1, 4, 8} {
		serial, _, _, err := commitRun(nw, true)
		if err != nil {
			return err
		}
		grouped, groups, staged, err := commitRun(nw, false)
		if err != nil {
			return err
		}
		rowE16(fmt.Sprintf("tx%d pnew serial-fsync", txBatch), serial, nw, nil)
		extra := map[string]float64{
			"speedup": float64(serial) / float64(grouped),
		}
		if groups > 0 {
			extra["avg_group"] = float64(staged) / float64(groups)
		}
		rowE16(fmt.Sprintf("tx%d pnew group-commit", txBatch), grouped, nw, extra)
	}

	// Client cache on the remote deref path: in-process loopback
	// server, working set small enough to stay resident, random walk
	// with repeats (the shape navigation produces).
	nItems := scale(2000)
	if nItems < 256 {
		nItems = 256
	}
	reps := scale(2000)
	if reps < 400 {
		reps = 400
	}
	rw, err := bench.NewWorld(nil)
	if err != nil {
		return err
	}
	defer rw.Close()
	oids, err := rw.LoadStock(nItems)
	if err != nil {
		return err
	}
	ws := oids
	if len(ws) > 256 {
		ws = ws[:256]
	}
	srv := server.New(rw.DB, nil)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(nil)
	defer srv.Close()
	schema, _ := bench.Schema()
	ctx := context.Background()

	derefWalk := func(c *client.Client) (time.Duration, error) {
		var k int
		d, err := timeIt(3, func() error {
			return c.RunTx(ctx, func(tx *client.Tx) error {
				for i := 0; i < reps; i++ {
					k = (k + 7919) % len(ws)
					if _, err := tx.Deref(ws[k]); err != nil {
						return err
					}
				}
				return nil
			})
		})
		return d / time.Duration(reps), err
	}

	cold, err := client.Dial(a.String(), schema, &client.Options{CacheSize: -1})
	if err != nil {
		return err
	}
	defer cold.Close()
	coldDeref, err := derefWalk(cold)
	if err != nil {
		return err
	}

	warm, err := client.Dial(a.String(), schema, nil)
	if err != nil {
		return err
	}
	defer warm.Close()
	// Fill pass: every working-set object becomes a cached miss, so
	// the measured transactions see only revalidations and local hits.
	if err := warm.RunTx(ctx, func(tx *client.Tx) error {
		for _, oid := range ws {
			if _, err := tx.Deref(oid); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	warmDeref, err := derefWalk(warm)
	if err != nil {
		return err
	}
	met := warm.CacheMetrics()
	rowE16("remote deref no-cache", coldDeref, 1, nil)
	rowE16("remote deref warm-cache", warmDeref, 1, map[string]float64{
		"speedup": float64(coldDeref) / float64(warmDeref),
		"hits":    float64(met.Hits.Load()),
		"misses":  float64(met.Misses.Load()),
	})
	return nil
}

// ode-server is the network daemon: it opens an Ode database file and
// serves it over TCP to remote clients (the ode/client package, ode-sh
// -connect, ode-bench -connect) using the internal/wire protocol.
//
// Usage:
//
//	ode-server -db inventory.odb -addr :6339 schema.oql
//	ode-server -db bench.odb -bench-schema -metrics :6340
//
// The schema rule is the same as for embedded openers of a shared
// file: clients must register the identical class list. A schema is
// supplied either as .oql scripts (class declarations, as ode-sh
// accepts), or with -bench-schema (the benchmark catalog, for remote
// ode-bench and CI smoke), or left empty for pure remote-O++ use —
// remote shells can declare classes over the wire.
//
// -metrics serves the engine+server metric registry on HTTP as both
// expvar (/debug/vars) and a plain JSON snapshot (/metrics); the same
// snapshot is available in-band over the wire protocol. docs/SERVER.md
// documents the deployment surface, docs/OBSERVABILITY.md the metric
// names.
//
// -replica-of HOST:PORT starts the node as a read replica: it
// subscribes to the primary's WAL stream, applies committed batches,
// and serves reads while rejecting writes with a typed read-only
// error. If the primary cannot serve the replica's position, the
// daemon exits unless -resync permits wiping the local copy and
// bootstrapping from a full snapshot. SIGUSR1 (or the wire promote
// command) promotes the replica: it detaches and accepts writes.
// Every node also accepts subscribers of its own, so replicas can
// cascade and a promoted node keeps its followers. docs/REPLICATION.md
// is the operations guide.
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ode"
	"ode/internal/bench"
	"ode/internal/oql"
	"ode/internal/repl"
	"ode/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:6339", "listen address for the wire protocol")
		dbPath      = flag.String("db", "", "database file (required)")
		poolPages   = flag.Int("pool", 4096, "buffer pool size in pages")
		cacheSize   = flag.Int("cache", 0, "decoded-object cache entries (0: engine default)")
		noSync      = flag.Bool("nosync", false, "skip fsync on commit (crash-unsafe; benchmarks only)")
		maxTx       = flag.Int("max-tx", 0, "admission control: concurrent transaction slots (0: unlimited)")
		maxQueued   = flag.Int("max-queued", 0, "admission control: queued transactions beyond the slots")
		walSoft     = flag.Int64("wal-soft", 0, "WAL soft limit in bytes (0: engine default)")
		walHard     = flag.Int64("wal-hard", 0, "WAL hard limit in bytes (0: engine default)")
		maxConns    = flag.Int("max-conns", 256, "session table bound; excess connections are shed")
		maxDeadline = flag.Duration("max-deadline", 0, "clamp client transaction deadlines (0: unclamped)")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
		metricsAddr = flag.String("metrics", "", "serve /metrics (JSON) and /debug/vars (expvar) on this address")
		benchSchema = flag.Bool("bench-schema", false, "register the benchmark catalog (for remote ode-bench)")
		replicaOf   = flag.String("replica-of", "", "follow the primary at HOST:PORT as a read replica")
		resync      = flag.Bool("resync", false, "with -replica-of: permit wiping the local copy for a full snapshot resync")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ode-server -db FILE [-addr HOST:PORT] [schema.oql ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *noSync {
		// Without fsync, commits are acked — and their LSNs advertised
		// to replication subscribers — before anything is durable. A
		// crash then leaves this node behind positions it already
		// shipped, silently diverging the group; see docs/REPLICATION.md
		// "Durability and SetSync(false)".
		fmt.Fprintln(os.Stderr, "ode-server: WARNING: -nosync acks commits before durability; a crash can lose acked transactions")
		if *replicaOf != "" {
			fmt.Fprintln(os.Stderr, "ode-server: WARNING: -nosync on a replica can silently diverge the replication group after a crash (acked LSNs may be lost); do not promote a node run this way")
		}
	}

	// Assemble the schema: benchmark catalog, .oql class declarations,
	// or empty (remote shells declare classes over the wire).
	var schema *ode.Schema
	if *benchSchema {
		schema, _ = bench.Schema()
	} else {
		schema = ode.NewSchema()
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if _, err := oql.SplitSchema(string(src), schema); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}

	openDB := func() *ode.DB {
		db, err := ode.Open(*dbPath, schema, &ode.Options{
			PoolPages:       *poolPages,
			ObjectCacheSize: *cacheSize,
			NoSync:          *noSync,
			MaxConcurrentTx: *maxTx,
			MaxQueuedTx:     *maxQueued,
			WALSoftLimit:    *walSoft,
			WALHardLimit:    *walHard,
		})
		if err != nil {
			fatal(err)
		}
		// Classes served for remote pnew need their clusters; create any
		// that are missing (idempotent across restarts). DDL is not
		// replicated — each node, replica or primary, creates its own.
		for _, c := range db.Schema().Classes() {
			if !db.HasCluster(c) {
				if err := db.CreateCluster(c); err != nil {
					fatal(fmt.Errorf("create cluster %s: %w", c.Name, err))
				}
			}
		}
		return db
	}

	// replSetup attaches the replication source (every node accepts
	// subscribers — cascading replicas, and followers after promotion)
	// and, with -replica-of, starts following the primary.
	replSetup := func(db *ode.DB) (*repl.Source, *repl.Replica, error) {
		rmet := &repl.Metrics{}
		rmet.Attach(db.MetricsRegistry())
		src := repl.NewSource(db, rmet, nil)
		if *replicaOf == "" {
			return src, nil, nil
		}
		rep := repl.NewReplica(db, *replicaOf, rmet, nil)
		if err := rep.Start(); err != nil {
			return nil, nil, err
		}
		return src, rep, nil
	}

	db := openDB()
	src, rep, err := replSetup(db)
	if err != nil && errors.Is(err, repl.ErrResyncRequired) && *resync {
		// The primary cannot serve our position (different database
		// lineage, or our batches were truncated away). Wipe and
		// bootstrap from a full snapshot: only an empty database may
		// accept one.
		fmt.Fprintln(os.Stderr, "ode-server: primary demands full resync; wiping local copy")
		db.Close()
		for _, suffix := range []string{"", ".wal", ".dw", ".rebuild"} {
			os.Remove(*dbPath + suffix)
		}
		db = openDB()
		src, rep, err = replSetup(db)
	}
	if err != nil {
		if errors.Is(err, repl.ErrResyncRequired) {
			fatal(fmt.Errorf("%w (restart with -resync to wipe and bootstrap)", err))
		}
		fatal(err)
	}
	defer db.Close()

	var promote func() error
	if rep != nil {
		promote = func() error {
			fmt.Fprintln(os.Stderr, "ode-server: promoting: detaching from primary, accepting writes")
			rep.Promote()
			return nil
		}
		// A fatal replication failure (resync demand mid-run, apply
		// error) stops the stream but not the server: reads keep
		// working, just increasingly stale. Surface it.
		go func() {
			<-rep.Done()
			if err := rep.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "ode-server: replication stopped: %v\n", err)
			}
		}()
	}

	srv := server.New(db, &server.Options{
		MaxConns:     *maxConns,
		MaxDeadline:  *maxDeadline,
		DrainTimeout: *drain,
		Repl:         src,
		Promote:      promote,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	if *metricsAddr != "" {
		expvar.Publish("ode", expvar.Func(func() any { return db.MetricsRegistry().Snapshot() }))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(db.MetricsRegistry().Snapshot())
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ode-server: metrics endpoint:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics (JSON) and /debug/vars (expvar)\n", *metricsAddr)
	}

	lnAddr, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	role := "primary"
	if rep != nil {
		role = "replica of " + *replicaOf
	}
	fmt.Printf("ode-server: serving %s on %s (%s, max-conns %d, drain %v)\n", *dbPath, lnAddr, role, *maxConns, *drain)

	// SIGINT/SIGTERM drain gracefully: stop accepting, give active
	// sessions the drain window, then cancel and close.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "ode-server: %v: draining...\n", s)
		srv.Close()
	}()
	// SIGUSR1 promotes a replica in place: stop following, accept
	// writes, keep serving (the wire promote command does the same).
	if rep != nil {
		usr := make(chan os.Signal, 1)
		signal.Notify(usr, syscall.SIGUSR1)
		go func() {
			for range usr {
				promote()
			}
		}()
	}

	if err := srv.Serve(nil); err != nil && err != server.ErrServerClosed {
		fatal(err)
	}
	if rep != nil {
		rep.Stop() // stop applying before the deferred db.Close
	}
	fmt.Println("ode-server: shut down cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ode-server:", err)
	os.Exit(1)
}

// ode-server is the network daemon: it opens an Ode database file and
// serves it over TCP to remote clients (the ode/client package, ode-sh
// -connect, ode-bench -connect) using the internal/wire protocol.
//
// Usage:
//
//	ode-server -db inventory.odb -addr :6339 schema.oql
//	ode-server -db bench.odb -bench-schema -metrics :6340
//
// The schema rule is the same as for embedded openers of a shared
// file: clients must register the identical class list. A schema is
// supplied either as .oql scripts (class declarations, as ode-sh
// accepts), or with -bench-schema (the benchmark catalog, for remote
// ode-bench and CI smoke), or left empty for pure remote-O++ use —
// remote shells can declare classes over the wire.
//
// -metrics serves the engine+server metric registry on HTTP as both
// expvar (/debug/vars) and a plain JSON snapshot (/metrics); the same
// snapshot is available in-band over the wire protocol. docs/SERVER.md
// documents the deployment surface, docs/OBSERVABILITY.md the metric
// names.
//
// -replica-of HOST:PORT starts the node as a read replica: it
// subscribes to the primary's WAL stream, applies committed batches,
// and serves reads while rejecting writes with a typed read-only
// error. If the primary cannot serve the replica's position, the
// daemon exits unless -resync (or -auto-failover) permits wiping the
// local copy and bootstrapping from a full snapshot. SIGUSR1 (or the
// wire promote command) promotes the replica: it detaches, durably
// bumps the fencing epoch, and accepts writes. Every node also accepts
// subscribers of its own, so replicas can cascade and a promoted node
// keeps its followers.
//
// -auto-failover (with -peers HOST:PORT,...) runs the node
// self-managing: followers detect a dead primary within
// -failover-window and deterministically elect the freshest reachable
// node, which promotes itself; a deposed primary detects the newer
// epoch, demotes itself, and rejoins the group as a replica (wiping
// and resyncing if its history forked); fatal stream errors self-heal
// by resubscribing or resyncing with backoff instead of requiring an
// operator. docs/REPLICATION.md is the operations guide.
//
// Exit codes: 0 clean drain, 1 fatal startup/serve error, 2 usage,
// 3 fatal replication error (e.g. a resync demand without permission
// to wipe).
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ode"
	"ode/internal/bench"
	"ode/internal/oql"
	"ode/internal/repl"
	"ode/internal/server"
)

// Exit codes (documented above; CI scripts branch on them).
const (
	exitClean = 0
	exitFatal = 1
	exitUsage = 2
	exitRepl  = 3
)

type config struct {
	addr        string
	advertise   string
	dbPath      string
	poolPages   int
	cacheSize   int
	noSync      bool
	maxTx       int
	maxQueued   int
	walSoft     int64
	walHard     int64
	maxConns    int
	maxDeadline time.Duration
	drain       time.Duration
	metricsAddr string
	replicaOf   string
	resync      bool
	auto        bool
	peers       []string
	window      time.Duration
	ackQuorum   int
	ackTimeout  time.Duration
	shardSlot   int
	shardCount  int

	schema *ode.Schema
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:6339", "listen address for the wire protocol")
		advertise   = flag.String("advertise", "", "address peers reach this node at (default: -addr); election rank identity")
		dbPath      = flag.String("db", "", "database file (required)")
		poolPages   = flag.Int("pool", 4096, "buffer pool size in pages")
		cacheSize   = flag.Int("cache", 0, "decoded-object cache entries (0: engine default)")
		noSync      = flag.Bool("nosync", false, "skip fsync on commit (crash-unsafe; benchmarks only)")
		maxTx       = flag.Int("max-tx", 0, "admission control: concurrent transaction slots (0: unlimited)")
		maxQueued   = flag.Int("max-queued", 0, "admission control: queued transactions beyond the slots")
		walSoft     = flag.Int64("wal-soft", 0, "WAL soft limit in bytes (0: engine default)")
		walHard     = flag.Int64("wal-hard", 0, "WAL hard limit in bytes (0: engine default)")
		maxConns    = flag.Int("max-conns", 256, "session table bound; excess connections are shed")
		maxDeadline = flag.Duration("max-deadline", 0, "clamp client transaction deadlines (0: unclamped)")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
		metricsAddr = flag.String("metrics", "", "serve /metrics (JSON) and /debug/vars (expvar) on this address")
		benchSchema = flag.Bool("bench-schema", false, "register the benchmark catalog (for remote ode-bench)")
		replicaOf   = flag.String("replica-of", "", "follow the primary at HOST:PORT as a read replica")
		resync      = flag.Bool("resync", false, "with -replica-of: permit wiping the local copy for a full snapshot resync")
		auto        = flag.Bool("auto-failover", false, "with -peers: detect primary failure, elect, promote, and self-heal automatically (implies -resync)")
		peers       = flag.String("peers", "", "comma-separated HOST:PORT list of the other nodes in the group")
		window      = flag.Duration("failover-window", 3*time.Second, "how long the primary must be unreachable before failing over")
		ackQuorum   = flag.Int("commit-ack-quorum", 0, "replicas that must ack each commit before its reply (0: asynchronous)")
		ackTimeout  = flag.Duration("commit-ack-timeout", 2*time.Second, "bound on the commit ack wait")
		shardSlot   = flag.Int("shard-slot", 0, "with -shard-count: this node's shard index (OIDs ≡ slot mod count route here)")
		shardCount  = flag.Int("shard-count", 0, "shards in the group; enables striped OID allocation and 2PC participation (0: unsharded)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ode-server -db FILE [-addr HOST:PORT] [schema.oql ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	if *auto && *peers == "" {
		fmt.Fprintln(os.Stderr, "ode-server: -auto-failover requires -peers")
		os.Exit(exitUsage)
	}
	if *shardCount > 0 && (*shardSlot < 0 || *shardSlot >= *shardCount) {
		fmt.Fprintf(os.Stderr, "ode-server: -shard-slot %d out of range for -shard-count %d\n", *shardSlot, *shardCount)
		os.Exit(exitUsage)
	}
	if *shardCount == 0 && *shardSlot != 0 {
		fmt.Fprintln(os.Stderr, "ode-server: -shard-slot requires -shard-count")
		os.Exit(exitUsage)
	}
	if *noSync {
		// Without fsync, commits are acked — and their LSNs advertised
		// to replication subscribers — before anything is durable. A
		// crash then leaves this node behind positions it already
		// shipped, silently diverging the group; see docs/REPLICATION.md
		// "Durability and SetSync(false)".
		fmt.Fprintln(os.Stderr, "ode-server: WARNING: -nosync acks commits before durability; a crash can lose acked transactions")
		if *replicaOf != "" || *auto {
			fmt.Fprintln(os.Stderr, "ode-server: WARNING: -nosync on a replica can silently diverge the replication group after a crash (acked LSNs may be lost); do not promote a node run this way")
		}
	}

	// Assemble the schema: benchmark catalog, .oql class declarations,
	// or empty (remote shells declare classes over the wire).
	var schema *ode.Schema
	if *benchSchema {
		schema, _ = bench.Schema()
	} else {
		schema = ode.NewSchema()
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if _, err := oql.SplitSchema(string(src), schema); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}

	cfg := &config{
		addr:        *addr,
		advertise:   *advertise,
		dbPath:      *dbPath,
		poolPages:   *poolPages,
		cacheSize:   *cacheSize,
		noSync:      *noSync,
		maxTx:       *maxTx,
		maxQueued:   *maxQueued,
		walSoft:     *walSoft,
		walHard:     *walHard,
		maxConns:    *maxConns,
		maxDeadline: *maxDeadline,
		drain:       *drain,
		metricsAddr: *metricsAddr,
		replicaOf:   *replicaOf,
		resync:      *resync,
		auto:        *auto,
		window:      *window,
		ackQuorum:   *ackQuorum,
		ackTimeout:  *ackTimeout,
		shardSlot:   *shardSlot,
		shardCount:  *shardCount,
		schema:      schema,
	}
	if cfg.advertise == "" {
		cfg.advertise = cfg.addr
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.peers = append(cfg.peers, p)
			}
		}
	}

	os.Exit(runLoop(cfg))
}

// curDB is the currently open database, for the process-global metrics
// endpoint (HTTP handlers register once but the database is reopened
// across resync restarts).
var curDB atomic.Pointer[ode.DB]

// outcome is one run's verdict: exit with code, or restart the node
// (optionally wiping the local copy first) following a new primary.
type outcome struct {
	code    int
	restart bool
	wipe    bool
	follow  string
}

// runLoop runs the node until it exits, restarting (and wiping, when
// the stream demanded a resync) across in-process role changes that
// need a fresh database. Restart backoff doubles on rapid crash loops
// and resets after a healthy run.
func runLoop(cfg *config) int {
	if cfg.metricsAddr != "" {
		expvar.Publish("ode", expvar.Func(func() any {
			if db := curDB.Load(); db != nil {
				return db.MetricsRegistry().Snapshot()
			}
			return nil
		}))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if db := curDB.Load(); db != nil {
				json.NewEncoder(w).Encode(db.MetricsRegistry().Snapshot())
			}
		})
		go func() {
			if err := http.ListenAndServe(cfg.metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ode-server: metrics endpoint:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics (JSON) and /debug/vars (expvar)\n", cfg.metricsAddr)
	}

	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)

	follow := cfg.replicaOf
	backoff := 500 * time.Millisecond
	for {
		started := time.Now()
		out := runOnce(cfg, follow, shutdown, usr1)
		if !out.restart {
			return out.code
		}
		follow = out.follow
		if out.wipe {
			fmt.Fprintln(os.Stderr, "ode-server: wiping local copy for full resync")
			for _, suffix := range []string{"", ".wal", ".dw", ".rebuild"} {
				os.Remove(cfg.dbPath + suffix)
			}
		}
		if time.Since(started) > time.Minute {
			backoff = 500 * time.Millisecond
		}
		fmt.Fprintf(os.Stderr, "ode-server: restarting in %v (following %q)\n", backoff, follow)
		select {
		case <-time.After(backoff):
		case s := <-shutdown:
			fmt.Fprintf(os.Stderr, "ode-server: %v during restart: exiting\n", s)
			return exitClean
		}
		if backoff *= 2; backoff > 10*time.Second {
			backoff = 10 * time.Second
		}
	}
}

// node is one run's mutable replication state: the replica handle
// changes across promote/demote/re-point without restarting the run.
type node struct {
	cfg  *config
	db   *ode.DB
	src  *repl.Source
	rmet *repl.Metrics
	mon  *repl.Monitor

	mu     sync.Mutex
	rep    *repl.Replica
	follow string

	repDied chan error // fatal replica errors (one per replica instance)

	outMu   sync.Mutex
	out     *outcome
	srvDown func()
}

// decide records the run's verdict once and tears the server down.
func (n *node) decide(o outcome) {
	n.outMu.Lock()
	first := n.out == nil
	if first {
		n.out = &o
	}
	n.outMu.Unlock()
	if first {
		n.srvDown()
	}
}

// startReplica begins following addr, retrying transient connect
// failures briefly (a freshly promoted primary may still be settling).
// The caller holds no locks.
func (n *node) startReplica(addr string) error {
	ropts := &repl.ReplicaOptions{HeartbeatTimeout: 4 * n.cfg.window}
	var err error
	for attempt, wait := 0, 200*time.Millisecond; attempt < 4; attempt, wait = attempt+1, wait*2 {
		rep := repl.NewReplica(n.db, addr, n.rmet, ropts)
		if err = rep.Start(); err == nil {
			n.mu.Lock()
			n.rep, n.follow = rep, addr
			n.mu.Unlock()
			go n.watchReplica(rep)
			return nil
		}
		if errors.Is(err, repl.ErrResyncRequired) || errors.Is(err, ode.ErrStaleEpoch) {
			return err
		}
		time.Sleep(wait)
	}
	return err
}

// watchReplica forwards one replica instance's fatal error to the run
// loop. A deliberate Stop (re-point, promote, shutdown) reports nil
// and is ignored.
func (n *node) watchReplica(rep *repl.Replica) {
	<-rep.Done()
	if err := rep.Err(); err != nil {
		n.repDied <- err
	}
}

// promote turns the node writable in place: detach, bump the fencing
// epoch durably, accept writes. Shared by SIGUSR1, the wire promote
// command, and the monitor's election win.
func (n *node) promote() error {
	n.mu.Lock()
	rep := n.rep
	n.rep, n.follow = nil, ""
	n.mu.Unlock()
	var epoch uint64
	var err error
	switch {
	case rep != nil:
		fmt.Fprintln(os.Stderr, "ode-server: promoting: detaching from primary, accepting writes")
		epoch, err = rep.Promote()
	case n.db.ReadOnly():
		// Booted read-only with no primary in sight (the seek state);
		// the election picked this node.
		fmt.Fprintln(os.Stderr, "ode-server: promoting: accepting writes")
		epoch, err = repl.PromoteDB(n.db, n.rmet)
	default:
		return nil // already primary
	}
	if err != nil {
		return fmt.Errorf("promote: epoch bump: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ode-server: serving writes at epoch %d\n", epoch)
	if n.mon != nil {
		n.mon.SetRole("")
	}
	return nil
}

// repoint stops the current replica (if any) and follows addr instead.
func (n *node) repoint(addr string) error {
	n.mu.Lock()
	rep := n.rep
	n.rep = nil
	n.mu.Unlock()
	if rep != nil {
		rep.Stop()
	}
	n.db.SetReadOnly(true)
	return n.startReplica(addr)
}

// wipeRestart reports whether wiping is permitted, and if so records a
// wipe-and-restart verdict.
func (n *node) wipeRestart(follow string, why error) bool {
	if !n.cfg.resync && !n.cfg.auto {
		return false
	}
	fmt.Fprintf(os.Stderr, "ode-server: %v; scheduling wipe and resync from %q\n", why, follow)
	n.decide(outcome{restart: true, wipe: true, follow: follow})
	return true
}

// handleEvents is the run's failover event pump: monitor decisions,
// fatal replica errors, and operator signals all land here.
func (n *node) handleEvents(stop <-chan struct{}, usr1 <-chan os.Signal) {
	var events <-chan repl.Event
	if n.mon != nil {
		events = n.mon.Events()
	}
	for {
		select {
		case <-stop:
			return
		case <-usr1:
			if err := n.promote(); err != nil {
				fmt.Fprintln(os.Stderr, "ode-server:", err)
			}
		case ev := <-events:
			switch ev.Kind {
			case repl.EventPromoteSelf:
				if err := n.promote(); err != nil {
					fmt.Fprintln(os.Stderr, "ode-server:", err)
					n.mon.SetSeeking() // re-arm unattached; promotion failed
				}
			case repl.EventNewPrimary:
				fmt.Fprintf(os.Stderr, "ode-server: primary moved to %s (epoch %d); re-pointing\n", ev.Addr, ev.Epoch)
				if err := n.repoint(ev.Addr); err != nil {
					if !n.wipeRestart(ev.Addr, err) {
						fmt.Fprintln(os.Stderr, "ode-server: re-point failed:", err)
						n.mon.SetSeeking()
					}
				} else {
					n.mon.SetRole(ev.Addr)
				}
			case repl.EventDeposed:
				fmt.Fprintf(os.Stderr, "ode-server: deposed by %s at epoch %d; demoting to replica\n", ev.Addr, ev.Epoch)
				n.db.SetReadOnly(true)
				if err := n.repoint(ev.Addr); err != nil {
					// The usual case: this node's unreplicated tail forked
					// from the new history, so the new primary demands a
					// resync.
					if !n.wipeRestart(ev.Addr, err) {
						n.decide(outcome{code: exitRepl})
					}
				} else {
					n.mon.SetRole(ev.Addr)
				}
			}
		case err := <-n.repDied:
			follow := n.currentFollow()
			fmt.Fprintf(os.Stderr, "ode-server: replication stream died: %v\n", err)
			switch {
			case errors.Is(err, ode.ErrStaleEpoch) && n.mon != nil:
				// The node we followed is itself deposed; seek the real
				// primary (the seeker tick adopts it on first sight and
				// emits EventNewPrimary).
				n.mon.SetSeeking()
			case errors.Is(err, repl.ErrResyncRequired), errors.Is(err, ode.ErrStaleEpoch):
				if !n.wipeRestart(follow, err) {
					n.decide(outcome{code: exitRepl})
				}
			default:
				// Apply error: the local copy is suspect. Rebuilding from
				// a snapshot is the self-healing answer when permitted;
				// otherwise keep serving (increasingly stale) reads, as
				// before.
				if !n.wipeRestart(follow, err) {
					fmt.Fprintln(os.Stderr, "ode-server: replication stopped; serving stale reads (restart with -resync to rebuild)")
				}
			}
		}
	}
}

func (n *node) currentFollow() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.follow
}

// runOnce opens the database and serves it until shutdown or a verdict
// that needs a fresh database (wipe-and-resync). follow is the primary
// to subscribe to, "" to serve as primary (subject to the boot-time
// peer scan under -auto-failover).
func runOnce(cfg *config, follow string, shutdown, usr1 <-chan os.Signal) outcome {
	db, err := ode.Open(cfg.dbPath, cfg.schema, &ode.Options{
		PoolPages:       cfg.poolPages,
		ObjectCacheSize: cfg.cacheSize,
		NoSync:          cfg.noSync,
		MaxConcurrentTx: cfg.maxTx,
		MaxQueuedTx:     cfg.maxQueued,
		WALSoftLimit:    cfg.walSoft,
		WALHardLimit:    cfg.walHard,
		ShardSlot:       cfg.shardSlot,
		ShardCount:      cfg.shardCount,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ode-server:", err)
		return outcome{code: exitFatal}
	}
	defer db.Close()
	curDB.Store(db)
	// Classes served for remote pnew need their clusters; create any
	// that are missing (idempotent across restarts). DDL is not
	// replicated — each node, replica or primary, creates its own.
	for _, c := range db.Schema().Classes() {
		if !db.HasCluster(c) {
			if err := db.CreateCluster(c); err != nil {
				fmt.Fprintf(os.Stderr, "ode-server: create cluster %s: %v\n", c.Name, err)
				return outcome{code: exitFatal}
			}
		}
	}

	// Boot-time peer scan: a restarted (possibly deposed) node must not
	// come up writable while the group has a primary at its epoch or
	// newer — and under auto-failover it must never self-crown at all.
	// A crashed replica restarting inside a partition holds the epoch it
	// adopted from the live primary; coming up writable there would put
	// two writers on one epoch, the exact split-brain fencing exists to
	// prevent. So: join a visible primary, else boot read-only in the
	// seek state and let the quorum election decide who serves writes.
	seeking := false
	if cfg.auto && follow == "" {
		// Of the visible primaries, join the one at the highest epoch: a
		// deposed primary that has not noticed yet is writable too, at a
		// stale epoch, and joining it would resync onto fenced history.
		var bestEpoch uint64
		for _, p := range cfg.peers {
			st, err := repl.Probe(p, 2*time.Second)
			if err == nil && !st.ReadOnly && st.Epoch >= db.Epoch() && (follow == "" || st.Epoch > bestEpoch) {
				follow, bestEpoch = p, st.Epoch
			}
		}
		if follow != "" {
			fmt.Fprintf(os.Stderr, "ode-server: peer %s is primary at epoch %d; joining as replica\n", follow, bestEpoch)
		}
		if follow == "" {
			fmt.Fprintln(os.Stderr, "ode-server: no primary visible; booting read-only until the group elects one")
			db.SetReadOnly(true)
			seeking = true
		}
	}

	n := &node{cfg: cfg, db: db, repDied: make(chan error, 4)}
	n.rmet = &repl.Metrics{}
	n.rmet.Attach(db.MetricsRegistry())
	n.src = repl.NewSource(db, n.rmet, &repl.SourceOptions{
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, "ode-server: "+format+"\n", args...) },
	})
	defer n.src.Close()

	if follow != "" {
		if err := n.startReplica(follow); err != nil {
			if errors.Is(err, repl.ErrResyncRequired) || errors.Is(err, ode.ErrStaleEpoch) {
				if cfg.resync || cfg.auto {
					return outcome{restart: true, wipe: true, follow: follow}
				}
				fmt.Fprintf(os.Stderr, "ode-server: %v (restart with -resync to wipe and bootstrap)\n", err)
				return outcome{code: exitRepl}
			}
			fmt.Fprintln(os.Stderr, "ode-server:", err)
			return outcome{code: exitFatal}
		}
	}

	srv := server.New(db, &server.Options{
		MaxConns:        cfg.maxConns,
		MaxDeadline:     cfg.maxDeadline,
		DrainTimeout:    cfg.drain,
		Repl:            n.src,
		CommitAckQuorum: cfg.ackQuorum,
		AckTimeout:      cfg.ackTimeout,
		Advertise:       cfg.advertise,
		Promote:         n.promote,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	n.srvDown = func() { srv.Close() }

	// The listen address may still be held by this process's previous
	// incarnation for a moment after a restart; retry briefly.
	var lnAddr net.Addr
	for attempt := 0; ; attempt++ {
		lnAddr, err = srv.Listen(cfg.addr)
		if err == nil {
			break
		}
		if attempt >= 20 {
			fmt.Fprintln(os.Stderr, "ode-server:", err)
			return outcome{code: exitFatal}
		}
		time.Sleep(250 * time.Millisecond)
	}
	role := "primary"
	if follow != "" {
		role = "replica of " + follow
	} else if seeking {
		role = "read-only, seeking primary"
	}
	fmt.Printf("ode-server: serving %s on %s (%s, max-conns %d, drain %v)\n", cfg.dbPath, lnAddr, role, cfg.maxConns, cfg.drain)

	if cfg.auto {
		n.mon = repl.NewMonitor(db, n.rmet, &repl.MonitorOptions{
			Self:   cfg.advertise,
			Peers:  cfg.peers,
			Window: cfg.window,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ode-server: "+format+"\n", args...)
			},
		})
		if seeking {
			// Seek state: no stream attached. The seeker tick adopts the
			// first writable peer it sees; with nobody writable the
			// window expires and the deterministic election decides.
			n.mon.SetSeeking()
		} else {
			n.mon.SetRole(follow)
		}
		n.mon.Start()
		defer n.mon.Stop()
	}

	stop := make(chan struct{})
	go n.handleEvents(stop, usr1)
	go func() {
		select {
		case s := <-shutdown:
			fmt.Fprintf(os.Stderr, "ode-server: %v: draining...\n", s)
			n.decide(outcome{code: exitClean})
		case <-stop:
		}
	}()

	serveErr := srv.Serve(nil)
	close(stop)
	n.mu.Lock()
	rep := n.rep
	n.rep = nil
	n.mu.Unlock()
	if rep != nil {
		rep.Stop() // stop applying before the deferred db.Close
	}

	n.outMu.Lock()
	out := n.out
	n.outMu.Unlock()
	if out == nil {
		if serveErr != nil && serveErr != server.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "ode-server:", serveErr)
			return outcome{code: exitFatal}
		}
		out = &outcome{code: exitClean}
	}
	if !out.restart && out.code == exitClean {
		fmt.Println("ode-server: shut down cleanly")
	}
	return *out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ode-server:", err)
	os.Exit(exitFatal)
}

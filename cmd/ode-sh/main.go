// ode-sh is the interactive O++ shell: it executes O++-subset programs
// (class declarations, pnew, forall queries, versions, triggers)
// against an Ode database file.
//
// Usage:
//
//	ode-sh -db inventory.odb schema.oql [script.oql ...]
//	ode-sh -db inventory.odb            # REPL on stdin
//	ode-sh -connect host:6339           # remote: statements run on ode-server
//
// When reopening an existing database, pass the same schema scripts
// first: classes must be registered before the file is opened so the
// catalog can be verified. Class declarations found in any script are
// registered before Open; the remaining statements run afterwards.
//
// With -connect the shell speaks the wire protocol to an ode-server
// daemon instead of opening a file: statements execute in a pinned
// server-side session, so declared classes and `begin` transactions
// persist across lines exactly as they do locally. The extra `shards;`
// statement prints the server's shard status (LSN, epoch, shard
// coordinates, in-doubt transactions).
//
// With -connect-shards the shell is an operator console for a shard
// group: `shards;` prints every shard's status through the router and
// `resolve;` settles in-doubt two-phase commits (see docs/SHARDING.md).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ode"
	"ode/client"
	"ode/internal/oql"
)

func main() {
	dbPath := flag.String("db", "", "database file (required unless -connect)")
	connect := flag.String("connect", "", "run against a remote ode-server at host:port")
	connectShards := flag.String("connect-shards", "", "comma-separated shard addresses; operator console over the router (shards; resolve;)")
	poolPages := flag.Int("pool", 1024, "buffer pool size in pages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ode-sh -db FILE [script.oql ...]\n       ode-sh -connect HOST:PORT [script.oql ...]\n       ode-sh -connect-shards HOST:PORT,HOST:PORT,...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *connectShards != "" {
		remoteShards(strings.Split(*connectShards, ","))
		return
	}
	if *connect != "" {
		remote(*connect, flag.Args())
		return
	}
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Phase 1: parse all scripts, registering classes into the schema.
	schema := ode.NewSchema()
	var programs []*oql.Program
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		prog, err := oql.SplitSchema(string(src), schema)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		programs = append(programs, prog)
	}

	db, err := ode.Open(*dbPath, schema, &ode.Options{PoolPages: *poolPages})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	sess := oql.NewSession(db, os.Stdout)
	for i, prog := range programs {
		if err := sess.Run(prog); err != nil {
			fatal(fmt.Errorf("%s: %w", flag.Arg(i), err))
		}
	}
	if len(programs) > 0 {
		if err := sess.Close(); err != nil {
			fatal(err)
		}
		db.Triggers().Wait()
		return
	}

	// REPL: accumulate input until braces balance and the line ends
	// with ';' (or '}' for class declarations and loops).
	fmt.Println("ode-sh — O++ subset shell. End statements with ';'. Ctrl-D to exit.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "ode> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		src := buf.String()
		if !complete(src) {
			prompt = "...> "
			continue
		}
		buf.Reset()
		prompt = "ode> "
		if strings.TrimSpace(src) == "" {
			continue
		}
		if err := sess.Exec(src); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		db.Triggers().Wait()
		if errs := db.Triggers().Errors(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "trigger error:", e)
			}
		}
	}
	if err := sess.Close(); err != nil {
		fatal(err)
	}
	db.Triggers().Wait()
}

// remote runs scripts (or the REPL) against an ode-server daemon. The
// whole interpreter lives server-side; each statement batch is one
// wire round trip and the printed output comes back as text.
func remote(addr string, scripts []string) {
	c, err := client.Dial(addr, ode.NewSchema(), nil)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	sess, err := c.Session(ctx)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()

	exec := func(src string) error {
		if isStmt(src, "shards") {
			st, err := c.ShardStatus(ctx)
			if err != nil {
				return err
			}
			printShard(-1, addr, st)
			return nil
		}
		out, err := sess.Exec(ctx, src)
		if out != "" {
			fmt.Print(out)
		}
		return err
	}

	if len(scripts) > 0 {
		for _, path := range scripts {
			src, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			if err := exec(string(src)); err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
		}
		return
	}

	fmt.Printf("ode-sh — connected to %s. End statements with ';'. Ctrl-D to exit.\n", addr)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "ode> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			break
		}
		buf.WriteString(scanner.Text())
		buf.WriteByte('\n')
		src := buf.String()
		if !complete(src) {
			prompt = "...> "
			continue
		}
		buf.Reset()
		prompt = "ode> "
		if strings.TrimSpace(src) == "" {
			continue
		}
		if err := exec(src); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

// remoteShards is the operator console for a shard group: statements
// go to the router, not an interpreter. `shards;` prints every shard's
// status and `resolve;` settles in-doubt two-phase commits.
func remoteShards(addrs []string) {
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	r, err := client.DialSharded(addrs, ode.NewSchema(), nil)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	exec := func(src string) error {
		switch {
		case isStmt(src, "shards"):
			sts, err := r.Status(ctx)
			for i, st := range sts {
				if st == nil {
					fmt.Printf("shard %d @ %s  UNREACHABLE\n", i, addrs[i])
					continue
				}
				printShard(i, addrs[i], st)
			}
			return err
		case isStmt(src, "resolve"):
			n, err := r.ResolveInDoubt(ctx)
			fmt.Printf("resolved %d in-doubt transaction(s)\n", n)
			return err
		default:
			return fmt.Errorf("router mode understands 'shards;' and 'resolve;' only; connect to one shard with -connect to run O++ statements")
		}
	}

	fmt.Printf("ode-sh — router over %d shards. Statements: shards; resolve;. Ctrl-D to exit.\n", len(addrs))
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("ode> ")
		if !scanner.Scan() {
			break
		}
		src := scanner.Text()
		if strings.TrimSpace(src) == "" {
			continue
		}
		if err := exec(src); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

// isStmt reports whether src is exactly the given bare statement,
// allowing the closing ';' and surrounding whitespace.
func isStmt(src, word string) bool {
	return strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), ";")) == word
}

// printShard renders one node's shard status. slot -1 means "whatever
// the server says" (single -connect mode).
func printShard(slot int, addr string, st *client.ShardStatus) {
	role := "rw"
	if st.ReadOnly {
		role = "ro"
	}
	coords := "unsharded"
	if st.Count > 0 {
		coords = fmt.Sprintf("slot %d/%d", st.Slot, st.Count)
	}
	label := ""
	if slot >= 0 {
		label = fmt.Sprintf("shard %d ", slot)
	}
	fmt.Printf("%s@ %s  %s  lsn=%d epoch=%d %s  prepared=%d\n",
		label, addr, coords, st.LSN, st.Epoch, role, len(st.Prepared))
	for _, p := range st.Prepared {
		rec := ""
		if p.Recovered {
			rec = " recovered"
		}
		fmt.Printf("  in-doubt %s  ops=%d age=%s%s\n", p.GID, p.Ops, p.Age.Round(time.Millisecond), rec)
	}
}

// complete reports whether the input forms a complete statement batch:
// balanced braces/parens outside literals, ending with ';' or '}'.
func complete(src string) bool {
	depth := 0
	inStr, inChar, inLine, inBlock := false, false, false, false
	var last byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inLine:
			if c == '\n' {
				inLine = false
			}
			continue
		case inBlock:
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inBlock = false
				i++
			}
			continue
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '\'':
			inChar = true
		case '/':
			if i+1 < len(src) {
				if src[i+1] == '/' {
					inLine = true
				} else if src[i+1] == '*' {
					inBlock = true
				}
			}
		case '{', '(':
			depth++
		case '}', ')':
			depth--
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			last = c
		}
	}
	if depth > 0 || inStr || inChar || inBlock {
		return false
	}
	return last == ';' || last == '}'
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ode-sh:", err)
	os.Exit(1)
}

// ode-sh is the interactive O++ shell: it executes O++-subset programs
// (class declarations, pnew, forall queries, versions, triggers)
// against an Ode database file.
//
// Usage:
//
//	ode-sh -db inventory.odb schema.oql [script.oql ...]
//	ode-sh -db inventory.odb            # REPL on stdin
//	ode-sh -connect host:6339           # remote: statements run on ode-server
//
// When reopening an existing database, pass the same schema scripts
// first: classes must be registered before the file is opened so the
// catalog can be verified. Class declarations found in any script are
// registered before Open; the remaining statements run afterwards.
//
// With -connect the shell speaks the wire protocol to an ode-server
// daemon instead of opening a file: statements execute in a pinned
// server-side session, so declared classes and `begin` transactions
// persist across lines exactly as they do locally.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"ode"
	"ode/client"
	"ode/internal/oql"
)

func main() {
	dbPath := flag.String("db", "", "database file (required unless -connect)")
	connect := flag.String("connect", "", "run against a remote ode-server at host:port")
	poolPages := flag.Int("pool", 1024, "buffer pool size in pages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ode-sh -db FILE [script.oql ...]\n       ode-sh -connect HOST:PORT [script.oql ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *connect != "" {
		remote(*connect, flag.Args())
		return
	}
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Phase 1: parse all scripts, registering classes into the schema.
	schema := ode.NewSchema()
	var programs []*oql.Program
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		prog, err := oql.SplitSchema(string(src), schema)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		programs = append(programs, prog)
	}

	db, err := ode.Open(*dbPath, schema, &ode.Options{PoolPages: *poolPages})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	sess := oql.NewSession(db, os.Stdout)
	for i, prog := range programs {
		if err := sess.Run(prog); err != nil {
			fatal(fmt.Errorf("%s: %w", flag.Arg(i), err))
		}
	}
	if len(programs) > 0 {
		if err := sess.Close(); err != nil {
			fatal(err)
		}
		db.Triggers().Wait()
		return
	}

	// REPL: accumulate input until braces balance and the line ends
	// with ';' (or '}' for class declarations and loops).
	fmt.Println("ode-sh — O++ subset shell. End statements with ';'. Ctrl-D to exit.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "ode> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		src := buf.String()
		if !complete(src) {
			prompt = "...> "
			continue
		}
		buf.Reset()
		prompt = "ode> "
		if strings.TrimSpace(src) == "" {
			continue
		}
		if err := sess.Exec(src); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		db.Triggers().Wait()
		if errs := db.Triggers().Errors(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "trigger error:", e)
			}
		}
	}
	if err := sess.Close(); err != nil {
		fatal(err)
	}
	db.Triggers().Wait()
}

// remote runs scripts (or the REPL) against an ode-server daemon. The
// whole interpreter lives server-side; each statement batch is one
// wire round trip and the printed output comes back as text.
func remote(addr string, scripts []string) {
	c, err := client.Dial(addr, ode.NewSchema(), nil)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	sess, err := c.Session(ctx)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()

	exec := func(src string) error {
		out, err := sess.Exec(ctx, src)
		if out != "" {
			fmt.Print(out)
		}
		return err
	}

	if len(scripts) > 0 {
		for _, path := range scripts {
			src, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			if err := exec(string(src)); err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
		}
		return
	}

	fmt.Printf("ode-sh — connected to %s. End statements with ';'. Ctrl-D to exit.\n", addr)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "ode> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			break
		}
		buf.WriteString(scanner.Text())
		buf.WriteByte('\n')
		src := buf.String()
		if !complete(src) {
			prompt = "...> "
			continue
		}
		buf.Reset()
		prompt = "ode> "
		if strings.TrimSpace(src) == "" {
			continue
		}
		if err := exec(src); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

// complete reports whether the input forms a complete statement batch:
// balanced braces/parens outside literals, ending with ';' or '}'.
func complete(src string) bool {
	depth := 0
	inStr, inChar, inLine, inBlock := false, false, false, false
	var last byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inLine:
			if c == '\n' {
				inLine = false
			}
			continue
		case inBlock:
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inBlock = false
				i++
			}
			continue
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '\'':
			inChar = true
		case '/':
			if i+1 < len(src) {
				if src[i+1] == '/' {
					inLine = true
				} else if src[i+1] == '*' {
					inBlock = true
				}
			}
		case '{', '(':
			depth++
		case '}', ')':
			depth--
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			last = c
		}
	}
	if depth > 0 || inStr || inChar || inBlock {
		return false
	}
	return last == ';' || last == '}'
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ode-sh:", err)
	os.Exit(1)
}

// ode-inspect dumps the physical structure of an Ode database file:
// page-type census, heap record counts by kind, catalog contents, and
// WAL/double-write side-file status. It needs no schema: it reads the
// storage layer directly.
//
// Usage:
//
//	ode-inspect file.odb
package main

import (
	"flag"
	"fmt"
	"os"

	"ode/internal/core"
	"ode/internal/object"
	"ode/internal/storage"
	"ode/internal/wal"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ode-inspect FILE.odb")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	fs, err := storage.OpenFile(path)
	if err != nil {
		fatal(err)
	}
	defer fs.Close()
	pool := storage.NewPool(fs, 256, nil, nil)

	fmt.Printf("file:          %s\n", path)
	fmt.Printf("pages:         %d (%d KiB)\n", fs.NumPages(), fs.NumPages()*storage.PageSize/1024)
	fmt.Printf("clean shutdown: %v\n", object.WasCleanShutdown(fs))

	// Page census.
	census := map[storage.PageType]int{}
	var heapLive, heapSlots int
	for id := storage.PageID(1); uint32(id) < fs.NumPages(); id++ {
		p, err := pool.Fetch(id)
		if err != nil {
			fmt.Printf("page %d: unreadable: %v\n", id, err)
			continue
		}
		census[p.Type()]++
		if p.Type() == storage.TypeHeap {
			h := storage.AsHeap(p)
			heapLive += h.Live()
			heapSlots += h.NumSlots()
		}
		pool.Unpin(id, false)
	}
	names := map[storage.PageType]string{
		storage.TypeFree:          "free/unwritten",
		storage.TypeMeta:          "meta",
		storage.TypeHeap:          "heap",
		storage.TypeBTreeLeaf:     "btree leaf",
		storage.TypeBTreeInternal: "btree internal",
	}
	fmt.Println("page census:")
	for t, n := range census {
		fmt.Printf("  %-15s %d\n", names[t], n)
	}
	fmt.Printf("heap records:  %d live / %d slots\n", heapLive, heapSlots)

	// Record kinds.
	kinds := map[byte]int{}
	var maxOID uint64
	err = object.ScanAllRecords(fs, pool, func(kind byte, oid core.OID, _ uint32, _ []byte) error {
		kinds[kind]++
		if uint64(oid) > maxOID {
			maxOID = uint64(oid)
		}
		return nil
	})
	if err != nil {
		fmt.Printf("record scan: %v\n", err)
	}
	fmt.Printf("objects:       %d current, %d frozen versions, %d catalog (max oid %d)\n",
		kinds[object.RecCurrent], kinds[object.RecVersion], kinds[object.RecCatalog], maxOID)

	// Catalog.
	if cat, err := object.ReadCatalogInfo(fs, pool); err == nil {
		fmt.Printf("catalog:       %d classes, %d clusters, %d indexes\n",
			len(cat.Fingerprints), len(cat.ClusterIDs), len(cat.Indexes))
		for name, fp := range cat.Fingerprints {
			fmt.Printf("  class %-14s %s\n", name, fp)
		}
		for _, ix := range cat.Indexes {
			fmt.Printf("  index %s\n", ix)
		}
		// Access paths: what the optimizer can choose from (extent scans
		// are always available; each index adds a range-scan path that
		// indexable suchthat clauses and equi-joins on the field use —
		// `explain` in ode-sh shows the choice for a concrete query).
		fmt.Println("access paths:")
		fmt.Printf("  extent-scan on every cluster (%d clusters)\n", len(cat.ClusterIDs))
		for _, ix := range cat.Indexes {
			fmt.Printf("  index-scan(%s in [lo, hi])\n", ix)
		}
	} else {
		fmt.Printf("catalog:       unreadable: %v\n", err)
	}

	// Side files.
	if l, err := wal.Open(path + ".wal"); err == nil {
		n := 0
		l.Replay(func(*wal.Op) error { n++; return nil })
		fmt.Printf("wal:           %d bytes, %d committed ops pending replay\n", l.Size(), n)
		l.Close()
	} else {
		fmt.Printf("wal:           %v\n", err)
	}
	if st, err := os.Stat(path + ".dw"); err == nil {
		fmt.Printf("double-write:  %d bytes\n", st.Size())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ode-inspect:", err)
	os.Exit(1)
}

package ode

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The shared crashAfter/reopen helpers live in crashtest_test.go.

func TestRecoveryReplaysCommittedTransactions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.odb")
	var oids []OID
	crashAfter(t, path, func(db *DB, stock *Class) {
		for i := 0; i < 25; i++ {
			oids = append(oids, addItem(t, db, stock, fmt.Sprintf("c%d", i), int64(i), float64(i)))
		}
	})
	db, _ := reopen(t, path)
	err := db.View(func(tx *Tx) error {
		for i, oid := range oids {
			o, err := tx.Deref(oid)
			if err != nil {
				return fmt.Errorf("object %d lost: %w", i, err)
			}
			if o.MustGet("qty").Int() != int64(i) {
				return fmt.Errorf("object %d state wrong", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryAfterUpdatesAndDeletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.odb")
	var keep, gone OID
	crashAfter(t, path, func(db *DB, stock *Class) {
		keep = addItem(t, db, stock, "keep", 1, 1)
		gone = addItem(t, db, stock, "gone", 2, 2)
		db.RunTx(func(tx *Tx) error {
			o, _ := tx.Deref(keep)
			o.MustSet("qty", Int(99))
			return tx.Update(keep, o)
		})
		db.RunTx(func(tx *Tx) error { return tx.PDelete(gone) })
	})
	db, stock := reopen(t, path)
	db.View(func(tx *Tx) error {
		o, err := tx.Deref(keep)
		if err != nil {
			t.Fatalf("keep lost: %v", err)
		}
		if o.MustGet("qty").Int() != 99 {
			t.Errorf("update lost: qty=%d", o.MustGet("qty").Int())
		}
		if _, err := tx.Deref(gone); err == nil {
			t.Error("deleted object resurrected")
		}
		n, _ := Forall(tx, stock).Count()
		if n != 1 {
			t.Errorf("extent = %d, want 1", n)
		}
		return nil
	})
}

func TestRecoveryPreservesVersions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.odb")
	var oid OID
	var ref VRef
	crashAfter(t, path, func(db *DB, stock *Class) {
		oid = addItem(t, db, stock, "v", 1, 1)
		db.RunTx(func(tx *Tx) error {
			var err error
			ref, err = tx.NewVersion(oid)
			if err != nil {
				return err
			}
			o, _ := tx.Deref(oid)
			o.MustSet("qty", Int(2))
			return tx.Update(oid, o)
		})
	})
	db, _ := reopen(t, path)
	db.View(func(tx *Tx) error {
		old, err := tx.DerefVersion(ref)
		if err != nil {
			t.Fatalf("version lost: %v", err)
		}
		if old.MustGet("qty").Int() != 1 {
			t.Error("version state wrong")
		}
		cur, _ := tx.Deref(oid)
		if cur.MustGet("qty").Int() != 2 {
			t.Error("current state wrong")
		}
		return nil
	})
}

func TestRecoveryAfterCheckpointPlusTail(t *testing.T) {
	// Work before a checkpoint (durable in pages) plus work after it
	// (only in the WAL): recovery must merge both.
	path := filepath.Join(t.TempDir(), "crash.odb")
	var early, late OID
	crashAfter(t, path, func(db *DB, stock *Class) {
		early = addItem(t, db, stock, "early", 10, 1)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		late = addItem(t, db, stock, "late", 20, 2)
		// Also update the early object post-checkpoint.
		db.RunTx(func(tx *Tx) error {
			o, _ := tx.Deref(early)
			o.MustSet("qty", Int(11))
			return tx.Update(early, o)
		})
	})
	db, stock := reopen(t, path)
	db.View(func(tx *Tx) error {
		eo, err := tx.Deref(early)
		if err != nil {
			t.Fatalf("early lost: %v", err)
		}
		if eo.MustGet("qty").Int() != 11 {
			t.Errorf("early qty = %d, want 11", eo.MustGet("qty").Int())
		}
		lo, err := tx.Deref(late)
		if err != nil {
			t.Fatalf("late lost: %v", err)
		}
		if lo.MustGet("qty").Int() != 20 {
			t.Error("late state wrong")
		}
		n, _ := Forall(tx, stock).Count()
		if n != 2 {
			t.Errorf("extent = %d", n)
		}
		return nil
	})
}

func TestRecoveryRebuildsIndexes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.odb")
	crashAfter(t, path, func(db *DB, stock *Class) {
		if err := db.CreateIndex(stock, "qty"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			addItem(t, db, stock, fmt.Sprintf("i%d", i), int64(i), 1)
		}
	})
	db, stock := reopen(t, path)
	db.View(func(tx *Tx) error {
		q := Forall(tx, stock).SuchThat(Field("qty").Ge(Int(25)))
		n, err := q.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Errorf("indexed query after recovery = %d, want 5", n)
		}
		if q.Plan() == "" || q.Plan()[0] != 'i' {
			t.Errorf("plan = %q, want index scan (index rebuilt)", q.Plan())
		}
		return nil
	})
}

func TestRecoveryOIDAllocatorAdvances(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.odb")
	var last OID
	crashAfter(t, path, func(db *DB, stock *Class) {
		for i := 0; i < 5; i++ {
			last = addItem(t, db, stock, fmt.Sprintf("o%d", i), 1, 1)
		}
	})
	db, stock := reopen(t, path)
	fresh := addItem(t, db, stock, "fresh", 1, 1)
	if fresh <= last {
		t.Fatalf("OID %d reused after recovery (last was %d)", fresh, last)
	}
}

func TestRecoveryActivationsSurvive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.odb")
	var oid OID
	crashAfter(t, path, func(db *DB, stock *Class) {
		oid = addItem(t, db, stock, "armed", 100, 1)
		err := db.RunTx(func(tx *Tx) error {
			_, err := db.Triggers().Activate(tx, oid, "reorder", Int(10), Int(100))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	db, _ := reopen(t, path)
	if n := len(db.Triggers().ActiveOn(oid)); n != 1 {
		t.Fatalf("activations after recovery = %d, want 1", n)
	}
}

func TestDisableRecoveryRefusesUncleanFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.odb")
	crashAfter(t, path, func(db *DB, stock *Class) {
		addItem(t, db, stock, "x", 1, 1)
	})
	schema, _ := inventorySchema()
	if _, err := Open(path, schema, &Options{DisableRecovery: true}); err != ErrNeedsRecovery {
		t.Fatalf("Open = %v, want ErrNeedsRecovery", err)
	}
}

func TestCleanShutdownSkipsRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.odb")
	db, stock := openInventory(t, path)
	addItem(t, db, stock, "x", 1, 1)
	db.Close()
	// No rebuild artifacts should exist and the WAL must be empty.
	if _, err := os.Stat(path + ".rebuild"); !os.IsNotExist(err) {
		t.Error("rebuild artifact left behind")
	}
	// A truncated WAL is not zero bytes: it keeps the replication base
	// record (LSN + replication id), and nothing else.
	fi, err := os.Stat(path + ".wal")
	if err != nil || fi.Size() == 0 || fi.Size() >= 128 {
		t.Errorf("wal size = %v after clean close, want only the base record", fi)
	}
	// DisableRecovery open succeeds on a clean file.
	schema2, _ := inventorySchema()
	db2, err := Open(path, schema2, &Options{DisableRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
}

func TestRepeatedCrashesConverge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "multi.odb")
	total := 0
	for round := 0; round < 4; round++ {
		crashAfter(t, path, func(db *DB, stock *Class) {
			for i := 0; i < 10; i++ {
				addItem(t, db, stock, fmt.Sprintf("r%d-%d", round, i), int64(i), 1)
				total++
			}
		})
	}
	db, stock := reopen(t, path)
	db.View(func(tx *Tx) error {
		n, err := Forall(tx, stock).Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != total {
			t.Errorf("extent = %d after %d crashes, want %d", n, 4, total)
		}
		return nil
	})
}
